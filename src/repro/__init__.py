"""repro — Gate Delay Fault Test Generation for Non-Scan Circuits.

A Python reproduction of G. van Brakel, U. Glaeser, H.G. Kerkhoff and
H.T. Vierhaus, "Gate Delay Fault Test Generation for Non-Scan Circuits",
Proc. European Design and Test Conference (ED&TC / DATE), 1995.

The public API re-exports the pieces most users need:

* circuit modelling and ISCAS'89 ``.bench`` I/O (:mod:`repro.circuit`),
* the eight-valued robust delay algebra (:mod:`repro.algebra`),
* the gate delay fault model (:mod:`repro.faults`),
* TDgen, the local two-frame delay-fault test generator (:mod:`repro.tdgen`),
* SEMILET, the sequential propagation / justification / synchronisation
  engine (:mod:`repro.semilet`),
* the fault simulators FAUSIM and TDsim (:mod:`repro.fausim`,
  :mod:`repro.tdsim`),
* the combined FOGBUSTER flow (:mod:`repro.core`),
* sharded multi-process campaign orchestration (:mod:`repro.orchestrate`),
* benchmark circuits (:mod:`repro.data`) and baselines (:mod:`repro.baselines`).

Quickstart::

    from repro import SequentialDelayATPG, load_circuit

    circuit = load_circuit("s27")
    atpg = SequentialDelayATPG(circuit)
    campaign = atpg.run()
    print(campaign.as_table3_row())
"""

from repro.circuit import (
    Circuit,
    CircuitBuilder,
    GateType,
    Line,
    LineKind,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from repro.algebra import (
    DelayValue,
    V0,
    V1,
    R,
    F,
    H0,
    H1,
    RC,
    FC,
    evaluate_delay_gate,
    format_truth_table,
)
from repro.faults import (
    DelayFaultType,
    FaultList,
    FaultStatus,
    GateDelayFault,
    enumerate_delay_faults,
)
from repro.tdgen import TDgen, LocalTest, LocalTestStatus
from repro.semilet import Semilet
from repro.fausim import LogicSimulator, PropagationFaultSimulator, simulate_sequence
from repro.tdsim import DelayFaultSimulator
from repro.core import (
    CampaignResult,
    ClockSchedule,
    FaultGrade,
    FaultResult,
    FaultResultStatus,
    SequentialDelayATPG,
    TestSequence,
    format_campaign_table,
    grade_test_sequence,
    verify_test_sequence,
)
from repro.data import list_circuits, load_circuit, circuit_spec
from repro.baselines import EnhancedScanATPG, RandomSequenceATPG
from repro.orchestrate import (
    CampaignOrchestrator,
    OrchestratorConfig,
    run_parallel_campaign,
)

__version__ = "1.0.0"

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "GateType",
    "Line",
    "LineKind",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "DelayValue",
    "V0",
    "V1",
    "R",
    "F",
    "H0",
    "H1",
    "RC",
    "FC",
    "evaluate_delay_gate",
    "format_truth_table",
    "DelayFaultType",
    "FaultList",
    "FaultStatus",
    "GateDelayFault",
    "enumerate_delay_faults",
    "TDgen",
    "LocalTest",
    "LocalTestStatus",
    "Semilet",
    "LogicSimulator",
    "PropagationFaultSimulator",
    "simulate_sequence",
    "DelayFaultSimulator",
    "CampaignResult",
    "ClockSchedule",
    "FaultResult",
    "FaultResultStatus",
    "SequentialDelayATPG",
    "TestSequence",
    "format_campaign_table",
    "verify_test_sequence",
    "grade_test_sequence",
    "FaultGrade",
    "list_circuits",
    "load_circuit",
    "circuit_spec",
    "EnhancedScanATPG",
    "RandomSequenceATPG",
    "CampaignOrchestrator",
    "OrchestratorConfig",
    "run_parallel_campaign",
    "__version__",
]

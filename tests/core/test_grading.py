"""Differential harness: fault-parallel grading vs per-fault scalar replay.

``grade_test_sequence`` with the packed backend puts the good machine in
pattern slot 0 and one gross-delay faulty machine in every remaining slot;
the verdict, detection frame and detecting primary output of every fault must
be identical to replaying the sequence against that fault alone with the
reference interpreter (which is what ``verify_test_sequence`` has always
done).
"""

from __future__ import annotations

import dataclasses
import random
from typing import List

import pytest

from repro.core.clocking import ClockSchedule
from repro.core.results import TestSequence
from repro.core.verify import grade_test_sequence, verify_test_sequence
from repro.faults.model import enumerate_delay_faults

from tests.fausim.test_packed_differential import random_circuit


def random_sequence(rng: random.Random, circuit, length: int = 6) -> TestSequence:
    """A random test sequence with a random fast-frame position."""
    vectors = [
        {pi: rng.randint(0, 1) for pi in circuit.primary_inputs} for _ in range(length)
    ]
    fast_index = rng.randint(1, length - 1)
    schedule = ClockSchedule.for_sequence(
        initialization_frames=fast_index - 1,
        propagation_frames=length - fast_index - 1,
    )
    fault = rng.choice(enumerate_delay_faults(circuit))
    return TestSequence(
        fault=fault,
        initialization_vectors=vectors[: fast_index - 1],
        v1=vectors[fast_index - 1],
        v2=vectors[fast_index],
        propagation_vectors=vectors[fast_index + 1 :],
        clock_schedule=schedule,
        observation_point="",
        observed_at_po=True,
    )


@pytest.mark.parametrize("seed", range(0, 30))
def test_grading_bit_exact_across_backends(seed):
    """Packed word-parallel grading equals the reference per-fault replay."""
    circuit = random_circuit(seed)
    rng = random.Random(6000 + seed)
    sequence = random_sequence(rng, circuit)
    faults = enumerate_delay_faults(circuit)

    want = grade_test_sequence(circuit, sequence, faults, backend="reference")
    got = grade_test_sequence(circuit, sequence, faults, backend="packed")
    assert len(got) == len(want) == len(faults)
    for reference, packed in zip(want, got):
        assert packed.fault == reference.fault
        assert packed.detected == reference.detected, f"seed {seed}: {packed.fault}"
        assert packed.detection_frame == reference.detection_frame, f"seed {seed}: {packed.fault}"
        assert packed.primary_output == reference.primary_output, f"seed {seed}: {packed.fault}"


@pytest.mark.parametrize("seed", range(0, 20, 2))
def test_grading_matches_verify_per_fault(seed):
    """Each grade equals a dedicated verify_test_sequence run for that fault."""
    circuit = random_circuit(seed)
    rng = random.Random(6100 + seed)
    sequence = random_sequence(rng, circuit)
    faults = enumerate_delay_faults(circuit)
    sample = rng.sample(faults, min(len(faults), 20))

    grades = grade_test_sequence(circuit, sequence, sample, backend="packed")
    for fault, grade in zip(sample, grades):
        candidate = dataclasses.replace(sequence, fault=fault)
        report = verify_test_sequence(circuit, candidate, backend="reference")
        assert grade.detected == report.detected, f"seed {seed}: {fault}"
        assert grade.detection_frame == report.detection_frame
        assert grade.primary_output == report.primary_output


@pytest.mark.parametrize("seed", range(0, 12, 3))
def test_verify_report_identical_across_backends(seed):
    """Full VerificationReport (including traces) matches between backends."""
    circuit = random_circuit(seed)
    rng = random.Random(6200 + seed)
    faults = enumerate_delay_faults(circuit)
    for _ in range(4):
        sequence = random_sequence(rng, circuit)
        sequence = dataclasses.replace(sequence, fault=rng.choice(faults))
        want = verify_test_sequence(circuit, sequence, backend="reference")
        got = verify_test_sequence(circuit, sequence, backend="packed")
        assert got.detected == want.detected
        assert got.detection_frame == want.detection_frame
        assert got.primary_output == want.primary_output
        assert got.good_trace == want.good_trace
        assert got.faulty_trace == want.faulty_trace


def test_grading_chunks_beyond_word_width(s27):
    """Fault lists longer than one word chunk transparently."""
    rng = random.Random(42)
    sequence = random_sequence(rng, s27, length=8)
    faults = enumerate_delay_faults(s27) * 2  # duplicates are graded per slot
    assert len(faults) > 63  # straddles the word boundary — the point of the test
    want = grade_test_sequence(s27, sequence, faults, backend="reference")
    got = grade_test_sequence(s27, sequence, faults, backend="packed")
    assert [(g.detected, g.detection_frame, g.primary_output) for g in got] == [
        (g.detected, g.detection_frame, g.primary_output) for g in want
    ]


def test_grading_empty_fault_list(s27):
    rng = random.Random(43)
    sequence = random_sequence(rng, s27)
    assert grade_test_sequence(s27, sequence, [], backend="packed") == []
    assert grade_test_sequence(s27, sequence, [], backend="reference") == []

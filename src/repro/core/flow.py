"""The extended FOGBUSTER flow (paper Figure 4).

For every targeted fault the flow runs:

1. **local test generation** (TDgen) — provoke the fault and propagate its
   effect to a PO or PPO within the two local time frames;
2. **forward propagation** (SEMILET, forward time processing) — only if the
   effect was captured in the state register;
3. **propagation justification** — PPI values the propagation needed are
   turned into PPO constraints and handed back to TDgen;
4. **justification of the test frames / initialisation** (SEMILET, reverse
   time processing) — a synchronising sequence for the state the local test
   requires;
5. **fault simulation** (FAUSIM + TDsim) — credit every additional fault the
   assembled sequence detects.

Backtracking between the steps is possible: if propagation or initialisation
fails, the local test generator is re-invoked with the previously used
pseudo primary output observation points blocked.

The flow resolves its ``backend`` parameter once
(:mod:`repro.fausim.backends`; ``packed`` by default) and threads the same
name into every step — TDgen and SEMILET (implication engines and search
kernels), the propagation fault simulator, TDsim and the gross-delay
verification — so one choice governs the entire campaign.
"""

from __future__ import annotations

import dataclasses
import logging
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.algebra.values import DelayValue, V0, V1
from repro.circuit.netlist import Circuit
from repro.core.clocking import ClockSchedule
from repro.core.results import (
    CampaignResult,
    FaultResult,
    FaultResultStatus,
    FlowPhase,
    TestSequence,
)
from repro.core.verify import verify_test_sequence
from repro.faults.model import (
    FaultList,
    FaultStatus,
    GateDelayFault,
    enumerate_delay_faults,
)
from repro.fausim.backends import create_simulator, resolve_backend
from repro.fausim.fault_sim import PropagationFaultSimulator
from repro.fausim.logic_sim import SignalValues
from repro.obs.metrics import resolve_metrics
from repro.obs.tracing import FaultCost, FaultSpan
from repro.semilet.engine import Semilet
from repro.tdgen.context import TDgenContext
from repro.tdgen.engine import TDgen
from repro.tdgen.result import LocalTest, LocalTestStatus
from repro.tdsim.cpt import DelayFaultSimulator

logger = logging.getLogger(__name__)


@dataclasses.dataclass
class _AttemptFailure:
    """Internal record of why one FOGBUSTER attempt failed."""

    status: FaultResultStatus
    phase: FlowPhase
    local_backtracks: int = 0
    sequential_backtracks: int = 0
    unsynchronizable_state: Optional[Dict[str, int]] = None


class SequentialDelayATPG:
    """Robust gate delay fault ATPG for non-scan synchronous sequential circuits.

    Args:
        circuit: circuit under test.
        robust: use the robust fault model (paper) or the relaxed non-robust
            variant (paper's conclusion / ablation E8).
        local_backtrack_limit: backtrack limit of TDgen (paper: 100).
        sequential_backtrack_limit: backtrack limit of SEMILET (paper: 100).
        max_local_retries: how many times the flow may re-enter local test
            generation with blocked observation points (inter-phase
            backtracking).
        fill_value: deterministic fill for don't-care bits when assembling
            concrete vectors.
        verify_sequences: re-check every generated sequence with the
            independent gross-delay verification before crediting it.
        metrics: an optional :class:`~repro.obs.metrics.MetricsRegistry`;
            defaults to the shared no-op null registry.  With a live
            registry the flow additionally keeps per-fault
            :class:`~repro.obs.tracing.FaultCost` records in
            :attr:`cost_log`.  Instrumentation never changes results:
            campaigns are bit-identical with metrics on or off.
        backend: simulation *and* implication backend (``"packed"`` — the
            default — or ``"reference"``, see :mod:`repro.fausim.backends`
            and :mod:`repro.tdgen.implication`); used for the logic
            simulation, the propagation-phase fault simulation, the TDsim
            injection checks, the sequence verification, and the search-side
            forward implication of TDgen and SEMILET.
    """

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        local_backtrack_limit: int = 100,
        sequential_backtrack_limit: int = 100,
        max_propagation_frames: Optional[int] = None,
        max_synchronization_frames: Optional[int] = None,
        max_local_retries: int = 3,
        fill_value: int = 0,
        verify_sequences: bool = True,
        enable_fault_simulation: bool = True,
        metrics: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.robust = robust
        self.fill_value = fill_value
        self.max_local_retries = max_local_retries
        self.verify_sequences = verify_sequences
        self.enable_fault_simulation = enable_fault_simulation
        self.metrics = resolve_metrics(metrics)
        self.cost_log: List[FaultCost] = []
        self.backend = resolve_backend(backend)

        self.context = TDgenContext(circuit)
        self.tdgen = TDgen(
            circuit,
            robust=robust,
            backtrack_limit=local_backtrack_limit,
            context=self.context,
            metrics=self.metrics,
            backend=self.backend,
        )
        self.semilet = Semilet(
            circuit,
            backtrack_limit=sequential_backtrack_limit,
            max_propagation_frames=max_propagation_frames,
            max_synchronization_frames=max_synchronization_frames,
            metrics=self.metrics,
            backend=self.backend,
        )
        self.fault_simulator = DelayFaultSimulator(
            circuit,
            robust=robust,
            context=self.context,
            metrics=self.metrics,
            backend=self.backend,
        )
        self._logic_simulator = create_simulator(circuit, self.backend)
        self._logic_simulator.metrics = self.metrics

    # ------------------------------------------------------------------ #
    # campaign driver
    # ------------------------------------------------------------------ #
    def run(
        self,
        faults: Optional[Sequence[GateDelayFault]] = None,
        max_target_faults: Optional[int] = None,
        time_limit_s: Optional[float] = None,
        prefix: Optional["PrefixConfig"] = None,
    ) -> CampaignResult:
        """Run a full ATPG campaign.

        Args:
            faults: explicit fault universe; defaults to every StR/StF fault on
                every stem and branch of the circuit.
            max_target_faults: stop targeting new faults after this many
                explicit targets (faults already covered by fault simulation do
                not count); remaining untargeted faults are reported in the
                aborted column.
            time_limit_s: wall-clock budget for the campaign.
            prefix: when given, run the hybrid campaign: a random-pattern
                prefix phase (:class:`~repro.core.prefilter.PrefixConfig` /
                :class:`~repro.core.prefilter.RandomPrefixEngine`) first strips
                the cheaply detectable faults from the universe, then the
                deterministic flow targets only the residue.  ``max_target_faults``
                counts residue targets only.
        """
        from repro.core.prefilter import RandomPrefixEngine, apply_prefix_outcome

        fault_universe = list(faults) if faults is not None else enumerate_delay_faults(self.circuit)
        fault_list = FaultList(fault_universe)
        logger.info(
            "campaign start: circuit=%s faults=%d backend=%s robust=%s",
            self.circuit.name, len(fault_list), self.backend, self.robust,
        )
        campaign = CampaignResult(circuit_name=self.circuit.name, total_faults=len(fault_list))
        start = time.perf_counter()
        deadline = start + time_limit_s if time_limit_s is not None else None

        with self.metrics.timed("repro_phase_seconds", phase="campaign"):
            if prefix is not None:
                engine = RandomPrefixEngine(
                    self.circuit,
                    prefix,
                    robust=self.robust,
                    fill_value=self.fill_value,
                    metrics=self.metrics,
                    backend=self.backend,
                )
                with self.metrics.timed("repro_phase_seconds", phase="prefix"):
                    outcome = engine.run(fault_universe, deadline=deadline)
                apply_prefix_outcome(campaign, fault_list, outcome)

            for fault in fault_universe:
                if fault_list.status(fault) is not FaultStatus.UNTARGETED:
                    continue
                if max_target_faults is not None and campaign.targeted >= max_target_faults:
                    break
                if deadline is not None and time.perf_counter() > deadline:
                    break

                result = self.target_fault(fault, deadline=deadline)
                newly_detected = credit_fault_result(result, fault_list)
                campaign.record(result, newly_detected)

        campaign.finalize(fault_list.counts(), time.perf_counter() - start)
        logger.info(
            "campaign done: circuit=%s tested=%d untestable=%d aborted=%d time=%.3fs",
            campaign.circuit_name, campaign.tested, campaign.untestable,
            campaign.aborted, campaign.cpu_seconds,
        )
        return campaign

    # ------------------------------------------------------------------ #
    # single-fault campaign step
    # ------------------------------------------------------------------ #
    def target_fault(
        self, fault: GateDelayFault, deadline: Optional[float] = None
    ) -> FaultResult:
        """One reusable campaign step: FOGBUSTER targeting plus fault simulation.

        Runs :meth:`generate_for_fault` and, when a test was produced,
        fault-simulates the assembled sequence (FAUSIM + TDsim).  The returned
        result's ``additionally_detected`` holds the *raw* detection list over
        the whole circuit — :func:`credit_fault_result` later filters it
        against the campaign's fault universe.  This per-fault step is
        independent of any campaign state, which is what lets the
        orchestration layer (:mod:`repro.orchestrate`) ship it to worker
        processes and still merge a deterministic, serially-identical
        campaign.

        With a live metrics registry the call is wrapped in a
        :class:`~repro.obs.tracing.FaultSpan` and its
        :class:`~repro.obs.tracing.FaultCost` record is appended to
        :attr:`cost_log`; the targeting itself is byte-for-byte the same.
        """
        if not self.metrics.enabled:
            return self._target_fault_impl(fault, deadline)
        span = FaultSpan(self.metrics, fault, engine=self.backend)
        result = self._target_fault_impl(fault, deadline)
        self.cost_log.append(span.finish(result))
        return result

    def _target_fault_impl(
        self, fault: GateDelayFault, deadline: Optional[float]
    ) -> FaultResult:
        """The uninstrumented body of :meth:`target_fault`."""
        result = self.generate_for_fault(fault, deadline=deadline)
        if (
            result.status is FaultResultStatus.TESTED
            and self.enable_fault_simulation
            and result.sequence is not None
        ):
            with self.metrics.timed("repro_phase_seconds", phase="tdsim"):
                result.additionally_detected = self._simulate_sequence(result.sequence)
        return result

    # ------------------------------------------------------------------ #
    # single-fault FOGBUSTER
    # ------------------------------------------------------------------ #
    def generate_for_fault(
        self, fault: GateDelayFault, deadline: Optional[float] = None
    ) -> FaultResult:
        """Run the extended FOGBUSTER algorithm for one fault (Figure 4).

        ``deadline`` is an optional :func:`time.perf_counter` timestamp; it is
        passed down into every search phase (TDgen and SEMILET), so a campaign
        time budget bounds even a single slow fault instead of only being
        checked between faults.  An expired search reports the fault aborted.
        """
        blocked_ppos: Set[str] = set()
        blocked_states: List[Dict[str, int]] = []
        last_failure = _AttemptFailure(
            status=FaultResultStatus.UNTESTABLE, phase=FlowPhase.LOCAL
        )
        attempts = 0

        for attempt in range(self.max_local_retries):
            attempts += 1
            outcome = self._attempt(fault, blocked_ppos, blocked_states, deadline=deadline)
            if isinstance(outcome, FaultResult):
                outcome.attempts = attempts
                return outcome
            failure, newly_blocked = outcome
            last_failure = failure
            if failure.phase is FlowPhase.LOCAL:
                # Local generation itself failed: retrying with the same blocks
                # cannot help.
                break
            made_progress = False
            if newly_blocked and not newly_blocked <= blocked_ppos:
                blocked_ppos |= newly_blocked
                made_progress = True
            if failure.unsynchronizable_state and failure.unsynchronizable_state not in blocked_states:
                # Inter-phase backtracking: ask TDgen for a local test that does
                # not require the state the initialisation phase failed on.
                blocked_states.append(dict(failure.unsynchronizable_state))
                made_progress = True
            if not made_progress:
                break

        if blocked_states and last_failure.phase is FlowPhase.LOCAL:
            # Every remaining local test requires an unsynchronisable state:
            # report the failure as a sequential (initialisation) one.
            last_failure.phase = FlowPhase.INITIALIZATION

        return FaultResult(
            fault=fault,
            status=last_failure.status,
            phase=last_failure.phase,
            local_backtracks=last_failure.local_backtracks,
            sequential_backtracks=last_failure.sequential_backtracks,
            attempts=attempts,
        )

    # ------------------------------------------------------------------ #
    def _attempt(
        self,
        fault: GateDelayFault,
        blocked_ppos: Set[str],
        blocked_states: Optional[List[Dict[str, int]]] = None,
        deadline: Optional[float] = None,
    ):
        """One pass through the FOGBUSTER phases.

        Returns either a successful :class:`FaultResult` or a tuple
        ``(_AttemptFailure, newly_blocked_ppos)``.
        """
        blocked_states = blocked_states or []
        with self.metrics.timed("repro_phase_seconds", phase="tdgen"):
            local = self.tdgen.generate(
                fault,
                blocked_observation=sorted(blocked_ppos),
                blocked_states=blocked_states,
                deadline=deadline,
            )
        if local.status is LocalTestStatus.UNTESTABLE:
            return (
                _AttemptFailure(
                    FaultResultStatus.UNTESTABLE, FlowPhase.LOCAL, local.backtracks
                ),
                set(),
            )
        if local.status is LocalTestStatus.ABORTED:
            return (
                _AttemptFailure(
                    FaultResultStatus.ABORTED, FlowPhase.LOCAL, local.backtracks
                ),
                set(),
            )

        propagation_vectors: List[Dict[str, int]] = []
        required_propagation_ppos: Dict[str, int] = {}
        sequential_backtracks = 0
        observation_point = local.observation_points[0] if local.observation_points else ""

        if not local.observed_at_po:
            # --- forward propagation phase --------------------------------- #
            good_state, faulty_state = self._post_test_states(local)
            assignable = [
                ppi
                for ppi in self.circuit.pseudo_primary_inputs
                if ppi not in good_state
            ]
            with self.metrics.timed("repro_phase_seconds", phase="propagation"):
                propagation = self.semilet.propagate(
                    good_state, faulty_state, assignable, deadline=deadline
                )
            sequential_backtracks += propagation.backtracks
            if not propagation.success:
                status = (
                    FaultResultStatus.ABORTED
                    if propagation.aborted
                    else FaultResultStatus.UNTESTABLE
                )
                observed_ppos = {
                    signal
                    for signal in local.observation_points
                    if not self.circuit.is_primary_output(signal)
                }
                return (
                    _AttemptFailure(
                        status,
                        FlowPhase.PROPAGATION,
                        local.backtracks,
                        sequential_backtracks,
                    ),
                    observed_ppos,
                )

            # --- propagation justification --------------------------------- #
            if propagation.required_first_frame_ppis:
                constraints = {
                    self.circuit.ppo_of_ppi(ppi): value
                    for ppi, value in propagation.required_first_frame_ppis.items()
                }
                required_propagation_ppos.update(constraints)
                with self.metrics.timed("repro_phase_seconds", phase="tdgen"):
                    revised = self.tdgen.generate(
                        fault,
                        required_ppo_values=constraints,
                        blocked_observation=sorted(blocked_ppos),
                        blocked_states=blocked_states,
                        deadline=deadline,
                    )
                if revised.status is not LocalTestStatus.SUCCESS:
                    status = (
                        FaultResultStatus.ABORTED
                        if revised.status is LocalTestStatus.ABORTED
                        else FaultResultStatus.UNTESTABLE
                    )
                    observed_ppos = {
                        signal
                        for signal in local.observation_points
                        if not self.circuit.is_primary_output(signal)
                    }
                    return (
                        _AttemptFailure(
                            status,
                            FlowPhase.PROPAGATION_JUSTIFICATION,
                            local.backtracks + revised.backtracks,
                            sequential_backtracks,
                        ),
                        observed_ppos,
                    )
                local = revised
                if not self._propagation_still_valid(local, propagation.vectors):
                    observed_ppos = {
                        signal
                        for signal in local.observation_points
                        if not self.circuit.is_primary_output(signal)
                    }
                    return (
                        _AttemptFailure(
                            FaultResultStatus.UNTESTABLE,
                            FlowPhase.PROPAGATION_JUSTIFICATION,
                            local.backtracks,
                            sequential_backtracks,
                        ),
                        observed_ppos,
                    )
            propagation_vectors = [dict(vector) for vector in propagation.vectors]
            observation_point = propagation.observed_po or observation_point

        # --- justification of test frames / initialisation ----------------- #
        required_state = local.required_state()
        with self.metrics.timed("repro_phase_seconds", phase="synchronization"):
            synchronization = self.semilet.synchronize(required_state, deadline=deadline)
        sequential_backtracks += synchronization.backtracks
        if not synchronization.success:
            status = (
                FaultResultStatus.ABORTED
                if synchronization.aborted
                else FaultResultStatus.UNTESTABLE
            )
            observed_ppos = {
                signal
                for signal in local.observation_points
                if not self.circuit.is_primary_output(signal)
            }
            return (
                _AttemptFailure(
                    status,
                    FlowPhase.INITIALIZATION,
                    local.backtracks,
                    sequential_backtracks,
                    unsynchronizable_state=dict(required_state) if required_state else None,
                ),
                observed_ppos,
            )

        # --- assemble and (optionally) verify the sequence ------------------ #
        sequence = self._assemble_sequence(
            fault, local, synchronization.vectors, propagation_vectors, observation_point
        )
        if self.verify_sequences:
            with self.metrics.timed("repro_phase_seconds", phase="verify"):
                report = verify_test_sequence(self.circuit, sequence, backend=self.backend)
            if not report.detected:
                observed_ppos = {
                    signal
                    for signal in local.observation_points
                    if not self.circuit.is_primary_output(signal)
                }
                return (
                    _AttemptFailure(
                        FaultResultStatus.ABORTED,
                        FlowPhase.COMPLETE,
                        local.backtracks,
                        sequential_backtracks,
                    ),
                    observed_ppos,
                )

        return FaultResult(
            fault=fault,
            status=FaultResultStatus.TESTED,
            phase=FlowPhase.COMPLETE,
            sequence=sequence,
            local_backtracks=local.backtracks,
            sequential_backtracks=sequential_backtracks,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _post_test_states(
        self, local: LocalTest
    ) -> Tuple[SignalValues, SignalValues]:
        """Good and faulty machine states right after the fast clock frame.

        Only PPO values that TDgen may specify (clean steady) enter the good
        state; PPOs carrying the fault effect differ between the machines; all
        other state bits stay unknown-but-equal (the unjustifiable don't care
        of the paper).
        """
        good_state: SignalValues = {}
        faulty_state: SignalValues = {}
        for ppo, value in local.ppo_final_values.items():
            if value is None:
                continue
            ppi = self.circuit.ppi_of_ppo(ppo)
            good_state[ppi] = value
            faulty_state[ppi] = value
        for ppo, effect in local.ppo_fault_effects.items():
            ppi = self.circuit.ppi_of_ppo(ppo)
            good_state[ppi] = effect.final
            faulty_state[ppi] = effect.initial
        return good_state, faulty_state

    def _propagation_still_valid(
        self, local: LocalTest, propagation_vectors: Sequence[Dict[str, int]]
    ) -> bool:
        """Re-check the propagation after the local test was revised.

        The revised local test must still capture a fault effect in the state
        register and the previously computed propagation vectors must still
        drive it to a primary output.
        """
        if local.observed_at_po:
            return True
        if not local.ppo_fault_effects:
            return False
        good_state, faulty_state = self._post_test_states(local)
        simulator = PropagationFaultSimulator(
            self.circuit, propagation_vectors, backend=self.backend
        )
        for ppo in local.ppo_fault_effects:
            ppi = self.circuit.ppi_of_ppo(ppo)
            observability = simulator.observability(
                good_state, ppi, faulty_value=faulty_state.get(ppi)
            )
            if observability.observable:
                return True
        return False

    def _assemble_sequence(
        self,
        fault: GateDelayFault,
        local: LocalTest,
        initialization_vectors: Sequence[Dict[str, int]],
        propagation_vectors: Sequence[Dict[str, int]],
        observation_point: str,
    ) -> TestSequence:
        """Fill don't cares and put all phases together into one sequence."""
        pi_pairs: Dict[str, DelayValue] = {}
        fill = V0 if self.fill_value == 0 else V1
        for pi in self.circuit.primary_inputs:
            value = local.pi_values.get(pi)
            pi_pairs[pi] = value if value is not None else fill

        # State at the start of the initial frame: whatever the initialisation
        # sequence provably establishes, the local requirements, and the fill
        # value for the remaining don't cares.
        init_state: SignalValues = {}
        state: SignalValues = {}
        for vector in initialization_vectors:
            frame = self._logic_simulator.clock(vector, state)
            state = frame.next_state
        init_state = state
        ppi_initial: Dict[str, int] = {}
        for ppi in self.circuit.pseudo_primary_inputs:
            if ppi in local.ppi_initial:
                ppi_initial[ppi] = local.ppi_initial[ppi]
            elif init_state.get(ppi) is not None:
                ppi_initial[ppi] = init_state[ppi]
            else:
                ppi_initial[ppi] = self.fill_value

        v1 = {pi: pi_pairs[pi].initial for pi in self.circuit.primary_inputs}
        v2 = {pi: pi_pairs[pi].final for pi in self.circuit.primary_inputs}
        filled_propagation = [
            {pi: vector.get(pi, self.fill_value) for pi in self.circuit.primary_inputs}
            for vector in propagation_vectors
        ]
        filled_initialization = [
            {pi: vector.get(pi, self.fill_value) for pi in self.circuit.primary_inputs}
            for vector in initialization_vectors
        ]
        schedule = ClockSchedule.for_sequence(
            initialization_frames=len(filled_initialization),
            propagation_frames=len(filled_propagation),
        )
        return TestSequence(
            fault=fault,
            initialization_vectors=filled_initialization,
            v1=v1,
            v2=v2,
            propagation_vectors=filled_propagation,
            clock_schedule=schedule,
            observation_point=observation_point,
            observed_at_po=local.observed_at_po,
            pi_pair_values=pi_pairs,
            ppi_initial_values=ppi_initial,
        )

    def _simulate_sequence(self, sequence: TestSequence) -> List[GateDelayFault]:
        """FAUSIM + TDsim: every additional fault the sequence detects."""
        return simulate_sequence_detections(
            self.circuit, self.context, self.fault_simulator, sequence, self.backend
        )


def simulate_sequence_detections(
    circuit: Circuit,
    context: TDgenContext,
    fault_simulator: DelayFaultSimulator,
    sequence: TestSequence,
    backend: Optional[str] = None,
) -> List[GateDelayFault]:
    """FAUSIM + TDsim detection pass for one fully specified test sequence.

    The exact eight-valued crediting rule of the deterministic flow: the
    good-machine state after the fast frame feeds the propagation-phase
    observability analysis (FAUSIM), and the delay fault simulator (TDsim,
    critical path tracing) returns every fault the sequence robustly detects
    at a primary output or through an observable pseudo primary output.  The
    sequence must carry its algebra-level view (``pi_pair_values`` and
    ``ppi_initial_values``).  Shared by the flow's per-fault fault simulation
    and the hybrid campaign's random-pattern prefix
    (:mod:`repro.core.prefilter`), so both phases credit detections under the
    same rule.
    """
    state = simulate_state_after_fast(
        context, sequence.pi_pair_values, sequence.ppi_initial_values
    )
    observability = {}
    if sequence.propagation_vectors:
        fausim = PropagationFaultSimulator(
            circuit, sequence.propagation_vectors, backend=backend
        )
        observability = fausim.observability_map(state, circuit.pseudo_primary_inputs)
    observable_ppos = [
        circuit.ppo_of_ppi(ppi)
        for ppi, result in observability.items()
        if result.observable
    ]
    required_ppo_values = {
        ppo: value
        for ppo, value in (
            (circuit.ppo_of_ppi(ppi), state.get(ppi))
            for ppi in circuit.pseudo_primary_inputs
        )
        if value is not None
    }
    detections = fault_simulator.simulate(
        sequence.pi_pair_values,
        sequence.ppi_initial_values,
        observable_ppos=observable_ppos,
        required_ppo_values=required_ppo_values,
    )
    return [detection.fault for detection in detections]


def credit_fault_result(result: FaultResult, fault_list: FaultList) -> int:
    """Fold one per-fault result into a campaign's fault-list bookkeeping.

    This is the serial-order crediting step shared by
    :meth:`SequentialDelayATPG.run` and the orchestrator's deterministic
    replay merge (:mod:`repro.orchestrate.coordinator`): the targeted fault is
    marked with its verdict, ``result.additionally_detected`` (the raw
    detection list produced by :meth:`SequentialDelayATPG.target_fault`) is
    filtered in place down to faults of this campaign's universe, and every
    detection is credited.  Returns how many faults were *newly* marked
    tested.
    """
    if result.status is FaultResultStatus.TESTED:
        newly = fault_list.mark_tested([result.fault])
        result.additionally_detected = [
            detection for detection in result.additionally_detected if detection in fault_list
        ]
        newly += fault_list.mark_tested(result.additionally_detected)
        return newly
    if result.status is FaultResultStatus.UNTESTABLE:
        fault_list.mark(result.fault, FaultStatus.UNTESTABLE)
    else:
        fault_list.mark(result.fault, FaultStatus.ABORTED)
    return 0


def simulate_state_after_fast(
    context: TDgenContext,
    pi_pair_values: Dict[str, DelayValue],
    ppi_initial_values: Dict[str, int],
) -> SignalValues:
    """Good-machine state latched at the end of the fast frame."""
    from repro.tdgen.simulation import good_machine_values

    values = good_machine_values(context, pi_pair_values, ppi_initial_values)
    state: SignalValues = {}
    for dff in context.circuit.flip_flops:
        state[dff.name] = values[dff.fanin[0]].final
    return state

"""TDsim: critical path tracing delay fault simulation of the fast frame."""

import pytest

from repro.algebra.values import F, R, V0, V1
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Line, LineKind
from repro.faults.model import DelayFaultType, GateDelayFault
from repro.tdgen.context import TDgenContext
from repro.tdgen.simulation import simulate_two_frame
from repro.tdsim.cpt import DelayFaultSimulator


def _reference_detections(circuit, pi_values, ppi_initial, observation_points):
    """Brute-force reference: inject every fault explicitly and check observation."""
    from repro.algebra.sets import has_fault_value, is_singleton
    from repro.faults.model import enumerate_delay_faults

    context = TDgenContext(circuit)
    detected = set()
    for fault in enumerate_delay_faults(circuit):
        state = simulate_two_frame(context, pi_values, ppi_initial, fault)
        for signal in observation_points:
            value_set = state.signal_sets[signal]
            if is_singleton(value_set) and has_fault_value(value_set):
                detected.add(fault)
                break
    return detected


def test_cpt_matches_brute_force_on_and_chain(and_chain):
    simulator = DelayFaultSimulator(and_chain)
    pi_values = {"a": R, "b": V1, "c": V0}
    detections = {d.fault for d in simulator.simulate(pi_values, {})}
    reference = _reference_detections(and_chain, pi_values, {}, and_chain.primary_outputs)
    assert detections == reference
    # The targeted rising transition along a -> ab -> y must be covered.
    assert GateDelayFault(Line("a"), DelayFaultType.SLOW_TO_RISE) in detections
    assert GateDelayFault(Line("ab"), DelayFaultType.SLOW_TO_RISE) in detections
    assert GateDelayFault(Line("y"), DelayFaultType.SLOW_TO_RISE) in detections


def test_cpt_matches_brute_force_on_inverter_pair(inverter_pair):
    simulator = DelayFaultSimulator(inverter_pair)
    for pi_value in (R, F):
        detections = {d.fault for d in simulator.simulate({"a": pi_value}, {})}
        reference = _reference_detections(
            inverter_pair, {"a": pi_value}, {}, inverter_pair.primary_outputs
        )
        assert detections == reference
        assert len(detections) == 3  # a, n1, n2 each with the matching transition


def test_cpt_matches_brute_force_on_s27(s27):
    simulator = DelayFaultSimulator(s27)
    cases = [
        ({"G0": F, "G1": V0, "G2": V0, "G3": V1}, {"G5": 0, "G6": 1, "G7": 0}),
        ({"G0": R, "G1": V0, "G2": V1, "G3": V0}, {"G5": 0, "G6": 0, "G7": 0}),
        ({"G0": V0, "G1": F, "G2": V0, "G3": R}, {"G5": 1, "G6": 0, "G7": 1}),
    ]
    for pi_values, ppi_initial in cases:
        detections = {d.fault for d in simulator.simulate(pi_values, ppi_initial)}
        reference = _reference_detections(s27, pi_values, ppi_initial, s27.primary_outputs)
        # CPT must never claim a fault the exact injection does not confirm.
        assert detections <= reference
        # And it must find the lion's share of them (stems are exact, branches
        # are exact, only deep reconvergence may be missed conservatively).
        if reference:
            assert len(detections) >= len(reference) * 0.7


def test_steady_pattern_detects_nothing(s27):
    simulator = DelayFaultSimulator(s27)
    pi_values = {"G0": V0, "G1": V0, "G2": V0, "G3": V0}
    detections = simulator.simulate(pi_values, {"G5": 0, "G6": 0, "G7": 0})
    for detection in detections:
        # Whatever is detected must at least involve a transition somewhere;
        # with an all-steady state and steady inputs the fast frame has no
        # transitions at all, so nothing can be detected.
        raise AssertionError(f"unexpected detection {detection.fault}")


def test_ppo_observation_requires_observability_list(s27):
    simulator = DelayFaultSimulator(s27)
    pi_values = {"G0": F, "G1": V0, "G2": V0, "G3": V1}
    ppi_initial = {"G5": 0, "G6": 1, "G7": 0}
    without_ppos = {d.fault for d in simulator.simulate(pi_values, ppi_initial)}
    with_ppos = {
        d.fault
        for d in simulator.simulate(
            pi_values, ppi_initial, observable_ppos=list(s27.pseudo_primary_outputs)
        )
    }
    assert without_ppos <= with_ppos


def test_invalidation_check_blocks_state_disturbing_faults(s27):
    """A fault observed through a PPO must not disturb required PPO values."""
    simulator = DelayFaultSimulator(s27)
    pi_values = {"G0": F, "G1": V0, "G2": V0, "G3": V1}
    ppi_initial = {"G5": 0, "G6": 1, "G7": 0}
    relaxed = {
        d.fault
        for d in simulator.simulate(
            pi_values, ppi_initial, observable_ppos=["G10", "G11", "G13"]
        )
    }
    # Requiring every PPO to keep a specific steady value can only shrink the
    # set of credited faults.
    constrained = {
        d.fault
        for d in simulator.simulate(
            pi_values,
            ppi_initial,
            observable_ppos=["G10", "G11", "G13"],
            required_ppo_values={"G10": 0, "G13": 0},
        )
    }
    assert constrained <= relaxed


def test_detection_records_observation_point(and_chain):
    simulator = DelayFaultSimulator(and_chain)
    detections = simulator.simulate({"a": R, "b": V1, "c": V0}, {})
    assert detections
    for detection in detections:
        assert detection.observation_point == "y"
        assert not detection.through_ppo


def test_incomplete_pattern_is_rejected(and_chain):
    simulator = DelayFaultSimulator(and_chain)
    with pytest.raises(ValueError):
        simulator.simulate({"a": R}, {})

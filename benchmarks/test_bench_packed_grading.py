"""Fault-parallel gross-delay grading vs the per-fault reference replay.

Grading a candidate sequence against the whole fault list is the dominant
cost of the random baseline and of any pattern-reuse strategy: the reference
path replays the full sequence once per fault, while the packed path grades
63 faulty machines next to the shared good machine in every bit-parallel
sweep (:func:`repro.core.verify.grade_test_sequence`).

``test_bench_packed_grading_speedup`` is the acceptance gate of the
fault-parallel rewrite: at least a 5x speedup on the s838 surrogate grading
workload, with verdict-identical results.
"""

from __future__ import annotations

import random
import time

import pytest

from benchconfig import write_bench_results
from repro.core.clocking import ClockSchedule
from repro.core.results import TestSequence
from repro.core.verify import grade_test_sequence
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults

#: Benchmark workload: one random sequence of F frames graded against N faults.
N_FRAMES = 12
N_FAULTS = 256


@pytest.fixture(scope="module")
def workload():
    circuit = load_circuit("s838", scale=0.5, seed=0)
    rng = random.Random(3)
    vectors = [
        {pi: rng.randint(0, 1) for pi in circuit.primary_inputs} for _ in range(N_FRAMES)
    ]
    fast_index = N_FRAMES // 2
    schedule = ClockSchedule.for_sequence(
        initialization_frames=fast_index - 1,
        propagation_frames=N_FRAMES - fast_index - 1,
    )
    faults = sample_faults(enumerate_delay_faults(circuit), N_FAULTS)
    sequence = TestSequence(
        fault=faults[0],
        initialization_vectors=vectors[: fast_index - 1],
        v1=vectors[fast_index - 1],
        v2=vectors[fast_index],
        propagation_vectors=vectors[fast_index + 1 :],
        clock_schedule=schedule,
        observation_point="",
        observed_at_po=True,
    )
    return circuit, sequence, faults


def _verdicts(grades):
    return [
        (grade.detected, grade.detection_frame, grade.primary_output)
        for grade in grades
    ]


def test_bench_grading_reference(benchmark, workload):
    circuit, sequence, faults = workload
    grades = benchmark(grade_test_sequence, circuit, sequence, faults, "reference")
    assert len(grades) == len(faults)


def test_bench_grading_packed(benchmark, workload):
    circuit, sequence, faults = workload
    grades = benchmark(grade_test_sequence, circuit, sequence, faults, "packed")
    assert len(grades) == len(faults)


def test_bench_packed_grading_speedup(workload):
    """Acceptance: packed grading >= 5x faster than reference, identical."""
    circuit, sequence, faults = workload

    start = time.perf_counter()
    reference = grade_test_sequence(circuit, sequence, faults, backend="reference")
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    packed = grade_test_sequence(circuit, sequence, faults, backend="packed")
    packed_seconds = time.perf_counter() - start

    assert _verdicts(packed) == _verdicts(reference)

    speedup = reference_seconds / packed_seconds
    detected = sum(1 for grade in packed if grade.detected)
    print(
        f"\npacked grading: {reference_seconds:.3f}s -> {packed_seconds:.3f}s "
        f"({speedup:.1f}x, {len(faults)} faults x {N_FRAMES} frames on "
        f"{circuit.name}, {detected} detected)"
    )
    write_bench_results(
        "packed_grading",
        {
            "workload": {
                "circuit": circuit.name,
                "n_faults": len(faults),
                "n_frames": N_FRAMES,
                "description": "grade_test_sequence, packed vs reference replay",
            },
            "reference_seconds": round(reference_seconds, 6),
            "packed_seconds": round(packed_seconds, 6),
            "speedup": round(speedup, 2),
            "gate": 5.0,
        },
    )
    assert speedup >= 5.0, (
        f"packed grading only {speedup:.1f}x faster than reference "
        f"({reference_seconds:.3f}s vs {packed_seconds:.3f}s)"
    )

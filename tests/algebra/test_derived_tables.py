"""Derived gate tables (OR, NAND, NOR, XOR, XNOR, BUF) built by De Morgan."""

import pytest

from repro.algebra.tables import (
    and2,
    evaluate_delay_gate,
    format_truth_table,
    not1,
    or2,
    table_for_gate,
    xor2,
)
from repro.algebra.values import ALL_VALUES, F, FC, H0, H1, R, RC, V0, V1
from repro.circuit.gates import GateType


def test_or_by_de_morgan():
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            assert or2(a, b) is not1(and2(not1(a), not1(b)))


def test_or_identity_and_domination():
    for value in ALL_VALUES:
        assert or2(V0, value) is value
        assert or2(V1, value) is V1


def test_or_robust_fault_propagation_is_dual_of_and():
    # Rc through OR needs a clean steady zero (or Rc) off path.
    assert or2(RC, V0) is RC
    assert or2(RC, RC) is RC
    assert or2(RC, H0) is R
    assert or2(RC, F) is H1
    # Fc through OR propagates with any final-zero off path value.
    assert or2(FC, V0) is FC
    assert or2(FC, H0) is FC
    assert or2(FC, F) is FC
    assert or2(FC, R) is H1


def test_nand_nor_are_inversions():
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            assert evaluate_delay_gate(GateType.NAND, (a, b)) is not1(and2(a, b))
            assert evaluate_delay_gate(GateType.NOR, (a, b)) is not1(or2(a, b))


def test_buf_is_identity():
    for value in ALL_VALUES:
        assert evaluate_delay_gate(GateType.BUF, (value,)) is value


def test_xor_basic_cases():
    assert xor2(V0, V0) is V0
    assert xor2(V1, V1) is V0
    assert xor2(V0, V1) is V1
    assert xor2(R, V0) is R
    assert xor2(R, V1) is F
    assert xor2(RC, V0) is RC
    assert xor2(RC, V1) is FC


def test_xor_with_two_transitions_is_hazardous():
    assert xor2(R, R) in (H0, H1, V0)
    assert xor2(R, R).is_steady
    assert xor2(R, F).is_steady


def test_xnor_is_inverted_xor():
    for a in ALL_VALUES:
        for b in ALL_VALUES:
            assert evaluate_delay_gate(GateType.XNOR, (a, b)) is not1(xor2(a, b))


def test_multi_input_gates_fold_associatively():
    for gate_type in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR):
        for a in (V0, V1, R, H1):
            for b in (F, RC, H0):
                for c in (V1, FC, R):
                    left = evaluate_delay_gate(gate_type, (a, b, c))
                    # Folding in a different order must give the same result for
                    # the non-inverting core.
                    if gate_type in (GateType.AND, GateType.OR):
                        pairwise = and2 if gate_type is GateType.AND else or2
                        assert left is pairwise(pairwise(a, b), c)
                        assert left is pairwise(a, pairwise(b, c))


def test_frame_semantics_for_all_two_input_gates():
    import operator

    frame_ops = {
        GateType.AND: operator.and_,
        GateType.OR: operator.or_,
        GateType.XOR: operator.xor,
    }
    for gate_type, op in frame_ops.items():
        for a in ALL_VALUES:
            for b in ALL_VALUES:
                result = evaluate_delay_gate(gate_type, (a, b))
                assert result.initial == op(a.initial, b.initial)
                assert result.final == op(a.final, b.final)


def test_single_input_gate_arity_enforced():
    with pytest.raises(ValueError):
        evaluate_delay_gate(GateType.NOT, (V0, V1))
    with pytest.raises(ValueError):
        evaluate_delay_gate(GateType.BUF, (V0, V1))
    with pytest.raises(ValueError):
        evaluate_delay_gate(GateType.AND, ())


def test_table_for_gate_rejects_single_input_types():
    with pytest.raises(ValueError):
        table_for_gate(GateType.NOT)


def test_format_truth_table_contains_all_values():
    rendered = format_truth_table(GateType.AND)
    for value in ALL_VALUES:
        assert value.name in rendered
    rendered_not = format_truth_table(GateType.NOT)
    assert "Fc" in rendered_not

"""Registry of the ISCAS'89 circuits used in the paper's Table 3.

``s27`` is loaded from its embedded netlist; every other circuit is a
surrogate (see :mod:`repro.data.surrogate` and DESIGN.md section 5) generated
with the published interface statistics.  The gate counts below follow the
commonly cited ISCAS'89 profile; absolute values do not have to be exact
because only the surrogate's size class matters for the experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.circuit.bench import parse_bench
from repro.circuit.netlist import Circuit
from repro.data.s27 import S27_BENCH
from repro.data.surrogate import generate_surrogate


@dataclasses.dataclass(frozen=True)
class BenchmarkSpec:
    """Interface statistics of one ISCAS'89 benchmark circuit."""

    name: str
    inputs: int
    outputs: int
    flip_flops: int
    gates: int
    surrogate: bool

    def scaled(self, scale: float) -> "BenchmarkSpec":
        """A down-scaled variant (same interface class, fewer gates/flip-flops).

        The interface (PIs/POs) shrinks much more slowly than the logic: a
        scaled surrogate keeps at least half of the published pin count so
        that controllability and observability stay in the same class as the
        original circuit.
        """
        if scale >= 1.0:
            return self
        io_scale = max(scale, 0.5)
        return BenchmarkSpec(
            name=self.name,
            inputs=max(3, round(self.inputs * io_scale)),
            outputs=max(1, round(self.outputs * io_scale)),
            flip_flops=max(1, round(self.flip_flops * scale)),
            gates=max(8, round(self.gates * scale)),
            surrogate=self.surrogate,
        )


#: Published interface statistics of the circuits evaluated in Table 3.
ISCAS89_SPECS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in (
        BenchmarkSpec("s27", 4, 1, 3, 10, surrogate=False),
        BenchmarkSpec("s208", 10, 1, 8, 96, surrogate=True),
        BenchmarkSpec("s298", 3, 6, 14, 119, surrogate=True),
        BenchmarkSpec("s344", 9, 11, 15, 160, surrogate=True),
        BenchmarkSpec("s349", 9, 11, 15, 161, surrogate=True),
        BenchmarkSpec("s386", 7, 7, 6, 159, surrogate=True),
        BenchmarkSpec("s420", 18, 1, 16, 218, surrogate=True),
        BenchmarkSpec("s641", 35, 24, 19, 379, surrogate=True),
        BenchmarkSpec("s713", 35, 23, 19, 393, surrogate=True),
        BenchmarkSpec("s838", 34, 1, 32, 446, surrogate=True),
        BenchmarkSpec("s1196", 14, 14, 18, 529, surrogate=True),
        BenchmarkSpec("s1238", 14, 14, 18, 508, surrogate=True),
    )
}

#: Order in which the paper's Table 3 lists the circuits.
TABLE3_ORDER: List[str] = [
    "s27",
    "s208",
    "s298",
    "s344",
    "s349",
    "s386",
    "s420",
    "s641",
    "s713",
    "s838",
    "s1196",
    "s1238",
]


def list_circuits() -> List[str]:
    """Names of all available benchmark circuits, in Table 3 order."""
    return list(TABLE3_ORDER)


def _normalize_name(name: str) -> str:
    """Resolve registry aliases: ``s838-surrogate`` names the ``s838`` entry."""
    if name.endswith("-surrogate"):
        return name[: -len("-surrogate")]
    return name


def circuit_spec(name: str) -> BenchmarkSpec:
    """Interface statistics of a benchmark circuit.

    ``<name>-surrogate`` is accepted as an alias for ``<name>`` (the registry
    entry already records whether the circuit is an embedded netlist or a
    generated surrogate).
    """
    try:
        return ISCAS89_SPECS[_normalize_name(name)]
    except KeyError as exc:
        raise KeyError(f"unknown benchmark circuit {name!r}; known: {list_circuits()}") from exc


def load_circuit(name: str, scale: float = 1.0, seed: int = 0) -> Circuit:
    """Load a benchmark circuit.

    Args:
        name: circuit name (``s27`` ... ``s1238``).
        scale: for surrogate circuits, scale factor applied to the gate and
            flip-flop counts (``1.0`` keeps the published size; smaller values
            produce proportionally smaller circuits for quick experiments —
            ``s27`` is always returned verbatim).
        seed: surrogate generator seed.
    """
    name = _normalize_name(name)
    spec = circuit_spec(name)
    if not spec.surrogate:
        return parse_bench(S27_BENCH, name="s27")
    scaled = spec.scaled(scale)
    suffix = "" if scale >= 1.0 else f"@{scale:g}"
    return generate_surrogate(
        name=f"{name}{suffix}",
        n_inputs=scaled.inputs,
        n_outputs=scaled.outputs,
        n_flip_flops=scaled.flip_flops,
        n_gates=scaled.gates,
        seed=seed,
    )

"""Fault-parallel two-frame eight-valued simulation on the compiled netlist.

This is the packed counterpart of the fully-specified path through
:func:`repro.tdgen.simulation.simulate_two_frame` — the hot loop of TDsim's
exact stem analysis and PPO confirmation, which the reference implementation
runs as one interpreted set-propagation pass *per injected fault*.

:class:`PackedTwoFrameSimulator` instead simulates one machine word of fault
injections in a single pass over the compiled gate program
(:mod:`repro.fausim.compile`):

1. the *initial* (slow clock) frame is fault free and therefore identical for
   every injection, so it is evaluated once with plain binary integer
   arithmetic (the pattern must be fully specified, as the reference path
   also requires);
2. the *test* frame runs in the eight-valued algebra with the one-hot
   multi-plane encoding of :mod:`repro.algebra.packed`: pattern slot ``j``
   carries the machine with ``faults[j]`` injected (``None`` for the good
   machine), the injection converting the activating ``R``/``F`` on the fault
   line of that slot into ``Rc``/``Fc`` exactly as the reference
   ``_inject`` does — at the stem output for stem faults, at the single
   faulted gate input for branch faults.

The differential harness in ``tests/fausim/test_packed_two_frame.py`` checks
the per-slot values signal for signal against the reference interpreter over
seeded random circuits and s27.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.packed import (
    NUM_PLANES,
    core_of,
    packed_not,
    packed_pair,
    packed_table,
)
from repro.algebra.values import ALL_VALUES, DelayValue, value_from_pair
from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit, LineKind
from repro.faults.model import GateDelayFault
from repro.fausim.compile import (
    _OPCODES,
    OP_BUF,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_XNOR,
    CompiledCircuit,
    compile_circuit,
)
from repro.fausim.packed_sim import WORD_BITS
from repro.obs.metrics import NULL_REGISTRY

#: Opcode -> (two-input core gate type, apply inverter permutation afterwards),
#: derived mechanically from the compiler's opcode map and the algebra's
#: core decomposition so the two cannot drift apart.
_OP_CORE: Dict[int, Tuple[GateType, bool]] = {
    opcode: core_of(gate_type)
    for gate_type, opcode in _OPCODES.items()
    if gate_type not in (GateType.NOT, GateType.BUF)
}


@dataclasses.dataclass
class PackedTwoFrameResult:
    """Per-slot outcome of one fault-parallel two-frame pass.

    Attributes:
        compiled: the compiled circuit the planes are laid out over.
        planes: per signal slot, the eight one-hot value planes.
        width: number of valid pattern slots (= number of injections).
        frame1: settled binary value of every signal in the initial frame
            (shared by all slots — the initial frame is fault free).
    """

    compiled: CompiledCircuit
    planes: List[List[int]]
    width: int
    frame1: Dict[str, int]

    def value(self, signal: str, pattern: int) -> DelayValue:
        """The algebra value of ``signal`` in pattern slot ``pattern``."""
        bit = 1 << pattern
        for index, plane in enumerate(self.planes[self.compiled.slot_of[signal]]):
            if plane & bit:
                return ALL_VALUES[index]
        raise ValueError(f"signal {signal!r} has no value in pattern {pattern}")

    def values_for_pattern(self, pattern: int) -> Dict[str, DelayValue]:
        """Every signal's value in one pattern slot (one machine's view)."""
        bit = 1 << pattern
        values: Dict[str, DelayValue] = {}
        for slot, name in enumerate(self.compiled.signal_names):
            for index, plane in enumerate(self.planes[slot]):
                if plane & bit:
                    values[name] = ALL_VALUES[index]
                    break
        return values

    def fault_effect_mask(self, signal: str) -> int:
        """Pattern bits in which ``signal`` carries a fault effect (Rc/Fc)."""
        planes = self.planes[self.compiled.slot_of[signal]]
        mask = 0
        for index, value in enumerate(ALL_VALUES):
            if value.fault:
                mask |= planes[index]
        return mask & ((1 << self.width) - 1)


class PackedTwoFrameSimulator:
    """Word-packed eight-valued two-frame simulator bound to one circuit.

    Args:
        circuit: circuit under test.
        robust: evaluate the robust (paper Table 1) or relaxed non-robust
            truth tables.
        word_bits: maximum number of injections per :meth:`simulate` call.
    """

    #: Metrics sink — assigned by owners that instrument this simulator; the
    #: single counter update per :meth:`simulate` call keeps the disabled
    #: path free of any per-gate overhead.
    metrics = NULL_REGISTRY

    def __init__(self, circuit: Circuit, robust: bool = True, word_bits: int = WORD_BITS) -> None:
        if word_bits < 1:
            raise ValueError("word_bits must be positive")
        self.circuit = circuit
        self.robust = robust
        self.word_bits = word_bits
        self.compiled: CompiledCircuit = compile_circuit(circuit)
        # Core truth tables are resolved once; packed_table is memoised, so
        # this only costs dictionary lookups.
        self._tables = {
            opcode: (packed_table(core, robust), invert)
            for opcode, (core, invert) in _OP_CORE.items()
        }

    # ------------------------------------------------------------------ #
    # frame 1: fault-free binary evaluation
    # ------------------------------------------------------------------ #
    def _frame1(
        self,
        pi_values: Mapping[str, Optional[DelayValue]],
        ppi_initial: Mapping[str, Optional[int]],
    ) -> List[int]:
        """Binary settled values of the initial frame, by signal slot."""
        compiled = self.compiled
        values = [0] * compiled.num_signals
        for slot, name in zip(compiled.pi_slots, self.circuit.primary_inputs):
            value = pi_values.get(name)
            if value is None:
                raise ValueError(
                    "packed two-frame simulation needs a fully specified pattern; "
                    f"primary input {name!r} is not assigned"
                )
            values[slot] = value.initial
        for slot, name in zip(compiled.ppi_slots, self.circuit.pseudo_primary_inputs):
            initial = ppi_initial.get(name)
            if initial is None:
                raise ValueError(
                    "packed two-frame simulation needs a fully specified pattern; "
                    f"pseudo primary input {name!r} is not assigned"
                )
            values[slot] = initial

        fanin_flat = compiled.fanin_flat
        offsets = compiled.fanin_offsets
        outputs = compiled.outputs
        for index, op in enumerate(compiled.ops):
            start = offsets[index]
            end = offsets[index + 1]
            first = values[fanin_flat[start]]
            if op <= OP_NAND:  # AND / NAND
                acc = first
                for position in range(start + 1, end):
                    acc &= values[fanin_flat[position]]
                if op == OP_NAND:
                    acc ^= 1
            elif op <= OP_NOR:  # OR / NOR
                acc = first
                for position in range(start + 1, end):
                    acc |= values[fanin_flat[position]]
                if op == OP_NOR:
                    acc ^= 1
            elif op == OP_NOT:
                acc = first ^ 1
            elif op == OP_BUF:
                acc = first
            else:  # XOR / XNOR
                acc = first
                for position in range(start + 1, end):
                    acc ^= values[fanin_flat[position]]
                if op == OP_XNOR:
                    acc ^= 1
            values[outputs[index]] = acc
        return values

    # ------------------------------------------------------------------ #
    # frame 2: packed eight-valued evaluation with per-slot injection
    # ------------------------------------------------------------------ #
    @staticmethod
    def _inject(planes: List[int], fault: GateDelayFault, bit: int) -> None:
        """Move the activating transition of one slot to its fault variant.

        Mirrors the reference ``_inject``: the conversion happens only when
        the slot actually holds the activation value (``R`` for StR, ``F``
        for StF); any other value passes through unchanged.
        """
        activation = fault.fault_type.activation_value.index
        if planes[activation] & bit:
            planes[activation] &= ~bit
            planes[fault.fault_type.fault_value.index] |= bit

    def simulate(
        self,
        pi_values: Mapping[str, Optional[DelayValue]],
        ppi_initial: Mapping[str, Optional[int]],
        faults: Sequence[Optional[GateDelayFault]] = (None,),
    ) -> PackedTwoFrameResult:
        """Run the two local time frames with one fault injection per slot.

        Args:
            pi_values: complete pair value per primary input.
            ppi_initial: complete initial-frame value per pseudo primary input.
            faults: the injection of each pattern slot; ``None`` slots carry
                the fault-free (good) machine.  At most ``word_bits`` slots.

        Returns:
            The packed planes of every signal plus the shared initial frame.
        """
        if not faults:
            raise ValueError("need at least one pattern slot")
        if len(faults) > self.word_bits:
            raise ValueError(
                f"{len(faults)} injections exceed the word width {self.word_bits}"
            )
        compiled = self.compiled
        width = len(faults)
        broadcast = (1 << width) - 1
        frame1_values = self._frame1(pi_values, ppi_initial)
        frame1 = {
            name: frame1_values[slot]
            for slot, name in enumerate(compiled.signal_names)
        }

        # Injection bookkeeping: stem moves keyed by signal slot, branch moves
        # keyed by flat fanin position (which pins a unique (gate, pin) pair).
        stem_moves: Dict[int, List[Tuple[GateDelayFault, int]]] = {}
        branch_moves: Dict[int, List[Tuple[GateDelayFault, int]]] = {}
        gate_index_of = compiled.gate_index_of
        for pattern, fault in enumerate(faults):
            if fault is None:
                continue
            bit = 1 << pattern
            slot = compiled.slot_of.get(fault.line.signal)
            if fault.line.kind is LineKind.STEM:
                if slot is not None:
                    stem_moves.setdefault(slot, []).append((fault, bit))
            else:
                sink_slot = compiled.slot_of.get(fault.line.sink)
                sink_index = gate_index_of.get(sink_slot)
                if sink_index is None or fault.line.pin is None:
                    continue  # the faulted sink is not a compiled gate (e.g. a DFF)
                position = compiled.fanin_offsets[sink_index] + fault.line.pin
                if (
                    position >= compiled.fanin_offsets[sink_index + 1]
                    or compiled.fanin_flat[position] != slot
                ):
                    continue  # pin does not exist / does not read the fault stem
                branch_moves.setdefault(position, []).append((fault, bit))

        # Source planes: each signal holds one broadcast value per word.
        planes: List[List[int]] = [[0] * NUM_PLANES for _ in range(compiled.num_signals)]
        for slot, name in zip(compiled.pi_slots, self.circuit.primary_inputs):
            planes[slot][pi_values[name].index] = broadcast
        for position, (slot, name) in enumerate(
            zip(compiled.ppi_slots, self.circuit.pseudo_primary_inputs)
        ):
            final = frame1_values[compiled.dff_data_slots[position]]
            pair = value_from_pair(ppi_initial[name], final)
            planes[slot][pair.index] = broadcast
        for slot, moves in stem_moves.items():
            # Source stems (PI / PPI) are injected right at the loaded planes;
            # gate stems are injected after the gate is evaluated below.
            if slot < len(compiled.pi_slots) + len(compiled.ppi_slots):
                for fault, bit in moves:
                    self._inject(planes[slot], fault, bit)

        tables = self._tables
        fanin_flat = compiled.fanin_flat
        offsets = compiled.fanin_offsets
        outputs = compiled.outputs
        for index, op in enumerate(compiled.ops):
            start = offsets[index]
            end = offsets[index + 1]

            input_planes: List[List[int]] = []
            for position in range(start, end):
                source = planes[fanin_flat[position]]
                moves = branch_moves.get(position)
                if moves is not None:
                    source = list(source)
                    for fault, bit in moves:
                        self._inject(source, fault, bit)
                input_planes.append(source)

            if op == OP_NOT:
                acc = packed_not(input_planes[0])
            elif op == OP_BUF:
                acc = list(input_planes[0])
            else:
                table, invert = tables[op]
                acc = input_planes[0]
                for nxt in input_planes[1:]:
                    acc = packed_pair(table, acc, nxt)
                if acc is input_planes[0]:
                    acc = list(acc)  # single-input AND/OR: don't alias the source
                if invert:
                    acc = packed_not(acc)

            out = outputs[index]
            moves = stem_moves.get(out)
            if moves is not None:
                for fault, bit in moves:
                    self._inject(acc, fault, bit)
            planes[out] = acc

        if self.metrics.enabled:
            # Frame 1 evaluates every gate once over a single binary word;
            # frame 2 evaluates every gate over the packed injection word.
            self.metrics.inc(
                "repro_sim_gate_words_total",
                len(compiled.ops) * (1 + (width + 63) // 64),
            )
        return PackedTwoFrameResult(
            compiled=compiled, planes=planes, width=width, frame1=frame1
        )

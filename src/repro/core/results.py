"""Result containers for the combined flow and for whole campaigns."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.algebra.values import DelayValue, value_from_name
from repro.core.clocking import ClockSchedule
from repro.faults.model import FaultStatus, GateDelayFault


class FaultResultStatus(enum.Enum):
    """Outcome of targeting one fault with the full FOGBUSTER flow."""

    TESTED = "tested"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


class FlowPhase(enum.Enum):
    """The FOGBUSTER phase in which a fault's processing ended (Figure 4)."""

    LOCAL = "local test generation"
    PROPAGATION = "forward propagation"
    PROPAGATION_JUSTIFICATION = "propagation justification"
    INITIALIZATION = "initialization"
    COMPLETE = "complete"


@dataclasses.dataclass
class TestSequence:
    """A complete test for one gate delay fault.

    The sequence consists of the initialisation vectors (slow clock), the two
    local vectors ``v1`` (slow) and ``v2`` (fast), and the propagation vectors
    (slow clock).  ``pi_pair_values`` / ``ppi_initial_values`` keep the
    algebra-level view used by the fault simulator.
    """

    # Not a pytest test class despite the name.
    __test__ = False

    fault: GateDelayFault
    initialization_vectors: List[Dict[str, int]]
    v1: Dict[str, int]
    v2: Dict[str, int]
    propagation_vectors: List[Dict[str, int]]
    clock_schedule: ClockSchedule
    observation_point: str
    observed_at_po: bool
    pi_pair_values: Dict[str, DelayValue] = dataclasses.field(default_factory=dict)
    ppi_initial_values: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def vectors(self) -> List[Dict[str, int]]:
        """All vectors in application order."""
        return list(self.initialization_vectors) + [self.v1, self.v2] + list(
            self.propagation_vectors
        )

    @property
    def pattern_count(self) -> int:
        """Number of applied patterns, initialisation and propagation included."""
        return len(self.vectors)

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation (see :meth:`from_json`).

        The clock schedule is not stored explicitly: it is fully determined by
        the initialisation / propagation frame counts (one slow + one fast
        local frame in between), so :meth:`from_json` rebuilds it.
        """
        return {
            "fault": self.fault.to_json(),
            "initialization_vectors": [dict(v) for v in self.initialization_vectors],
            "v1": dict(self.v1),
            "v2": dict(self.v2),
            "propagation_vectors": [dict(v) for v in self.propagation_vectors],
            "observation_point": self.observation_point,
            "observed_at_po": self.observed_at_po,
            "pi_pair_values": {pi: value.name for pi, value in self.pi_pair_values.items()},
            "ppi_initial_values": dict(self.ppi_initial_values),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "TestSequence":
        """Rebuild a :class:`TestSequence` from its :meth:`to_json` form."""
        initialization = [dict(v) for v in payload["initialization_vectors"]]
        propagation = [dict(v) for v in payload["propagation_vectors"]]
        return cls(
            fault=GateDelayFault.from_json(payload["fault"]),
            initialization_vectors=initialization,
            v1=dict(payload["v1"]),
            v2=dict(payload["v2"]),
            propagation_vectors=propagation,
            clock_schedule=ClockSchedule.for_sequence(
                initialization_frames=len(initialization),
                propagation_frames=len(propagation),
            ),
            observation_point=str(payload["observation_point"]),
            observed_at_po=bool(payload["observed_at_po"]),
            pi_pair_values={
                pi: value_from_name(name)
                for pi, name in payload["pi_pair_values"].items()
            },
            ppi_initial_values=dict(payload["ppi_initial_values"]),
        )


@dataclasses.dataclass
class FaultResult:
    """Outcome of the FOGBUSTER flow for one targeted fault."""

    fault: GateDelayFault
    status: FaultResultStatus
    phase: FlowPhase
    sequence: Optional[TestSequence] = None
    additionally_detected: List[GateDelayFault] = dataclasses.field(default_factory=list)
    local_backtracks: int = 0
    sequential_backtracks: int = 0
    attempts: int = 1

    @property
    def tested(self) -> bool:
        """True when the flow produced a verified test for the fault."""
        return self.status is FaultResultStatus.TESTED

    def __str__(self) -> str:
        return f"FaultResult({self.fault}, {self.status.value}, phase={self.phase.value})"

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation (see :meth:`from_json`)."""
        return {
            "fault": self.fault.to_json(),
            "status": self.status.value,
            "phase": self.phase.name,
            "sequence": self.sequence.to_json() if self.sequence is not None else None,
            "additionally_detected": [f.to_json() for f in self.additionally_detected],
            "local_backtracks": self.local_backtracks,
            "sequential_backtracks": self.sequential_backtracks,
            "attempts": self.attempts,
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "FaultResult":
        """Rebuild a :class:`FaultResult` from its :meth:`to_json` form."""
        sequence = payload.get("sequence")
        return cls(
            fault=GateDelayFault.from_json(payload["fault"]),
            status=FaultResultStatus(payload["status"]),
            phase=FlowPhase[payload["phase"]],
            sequence=TestSequence.from_json(sequence) if sequence is not None else None,
            additionally_detected=[
                GateDelayFault.from_json(f) for f in payload["additionally_detected"]
            ],
            local_backtracks=int(payload["local_backtracks"]),
            sequential_backtracks=int(payload["sequential_backtracks"]),
            attempts=int(payload["attempts"]),
        )


@dataclasses.dataclass
class CampaignResult:
    """Aggregated results of a full ATPG campaign on one circuit (Table 3 row)."""

    circuit_name: str
    total_faults: int
    tested: int = 0
    untestable: int = 0
    aborted: int = 0
    pattern_count: int = 0
    cpu_seconds: float = 0.0
    sequences: List[TestSequence] = dataclasses.field(default_factory=list)
    fault_results: List[FaultResult] = dataclasses.field(default_factory=list)
    untestable_local: int = 0
    untestable_sequential: int = 0
    aborted_local: int = 0
    aborted_sequential: int = 0
    targeted: int = 0
    detected_by_simulation: int = 0
    #: Random-pattern prefix statistics of a hybrid campaign (see
    #: :mod:`repro.core.prefilter`); all zero for a deterministic-only run.
    prefix_applied: int = 0
    prefix_detected: int = 0
    prefix_stop_reason: Optional[str] = None
    prefix_sequences: List[TestSequence] = dataclasses.field(default_factory=list)

    @property
    def fault_coverage(self) -> float:
        """Fraction of the fault universe marked tested."""
        if self.total_faults == 0:
            return 0.0
        return self.tested / self.total_faults

    @property
    def fault_efficiency(self) -> float:
        """Fraction of faults with a definite verdict (tested or untestable)."""
        if self.total_faults == 0:
            return 0.0
        return (self.tested + self.untestable) / self.total_faults

    def as_table3_row(self) -> Dict[str, object]:
        """The columns of the paper's Table 3 for this circuit."""
        return {
            "circuit": self.circuit_name,
            "tested": self.tested,
            "untestable": self.untestable,
            "aborted": self.aborted,
            "patterns": self.pattern_count,
            "time_s": round(self.cpu_seconds, 2),
        }

    def untestable_breakdown(self) -> Dict[str, int]:
        """Split of untestable faults by the phase that proved them untestable.

        The paper (section 6) observes that a large part of the untestable
        faults is only *sequentially* untestable; this breakdown makes that
        observation measurable.
        """
        return {
            "combinationally_untestable": self.untestable_local,
            "sequentially_untestable": self.untestable_sequential,
        }

    def record(self, result: FaultResult, newly_detected: int) -> None:
        """Fold one fault result into the campaign counters."""
        self.fault_results.append(result)
        self.targeted += 1
        if result.status is FaultResultStatus.TESTED:
            if result.sequence is not None:
                self.sequences.append(result.sequence)
                self.pattern_count += result.sequence.pattern_count
            self.detected_by_simulation += max(newly_detected - 1, 0)
        elif result.status is FaultResultStatus.UNTESTABLE:
            if result.phase is FlowPhase.LOCAL:
                self.untestable_local += 1
            else:
                self.untestable_sequential += 1
        else:
            if result.phase is FlowPhase.LOCAL:
                self.aborted_local += 1
            else:
                self.aborted_sequential += 1

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation (see :meth:`from_json`).

        Sequences are stored once, inside their fault results; standalone
        entries of :attr:`sequences` (there are none in results produced by
        the flow) would not survive the round trip.
        """
        return {
            "circuit_name": self.circuit_name,
            "total_faults": self.total_faults,
            "tested": self.tested,
            "untestable": self.untestable,
            "aborted": self.aborted,
            "pattern_count": self.pattern_count,
            "cpu_seconds": self.cpu_seconds,
            "fault_results": [result.to_json() for result in self.fault_results],
            "untestable_local": self.untestable_local,
            "untestable_sequential": self.untestable_sequential,
            "aborted_local": self.aborted_local,
            "aborted_sequential": self.aborted_sequential,
            "targeted": self.targeted,
            "detected_by_simulation": self.detected_by_simulation,
            "prefix_applied": self.prefix_applied,
            "prefix_detected": self.prefix_detected,
            "prefix_stop_reason": self.prefix_stop_reason,
            "prefix_sequences": [seq.to_json() for seq in self.prefix_sequences],
        }

    def fingerprint(self) -> Dict[str, object]:
        """The deterministic view of the campaign: :meth:`to_json` minus timing.

        ``cpu_seconds`` is the only wall-clock-dependent field; everything
        else is a pure function of (circuit, settings, fault universe).  Two
        campaigns are *bit-identical* when their fingerprints compare equal —
        the contract pinned by the orchestrator's replay merge, the backend
        differential tests and the incremental re-run engine
        (:mod:`repro.store.incremental`).
        """
        payload = self.to_json()
        payload.pop("cpu_seconds", None)
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "CampaignResult":
        """Rebuild a :class:`CampaignResult` from its :meth:`to_json` form."""
        fault_results = [FaultResult.from_json(r) for r in payload["fault_results"]]
        campaign = cls(
            circuit_name=str(payload["circuit_name"]),
            total_faults=int(payload["total_faults"]),
            tested=int(payload["tested"]),
            untestable=int(payload["untestable"]),
            aborted=int(payload["aborted"]),
            pattern_count=int(payload["pattern_count"]),
            cpu_seconds=float(payload["cpu_seconds"]),
            fault_results=fault_results,
            untestable_local=int(payload["untestable_local"]),
            untestable_sequential=int(payload["untestable_sequential"]),
            aborted_local=int(payload["aborted_local"]),
            aborted_sequential=int(payload["aborted_sequential"]),
            targeted=int(payload["targeted"]),
            detected_by_simulation=int(payload["detected_by_simulation"]),
            # Prefix fields default to the deterministic-only values so
            # results stored before the hybrid flow existed still load.
            prefix_applied=int(payload.get("prefix_applied", 0)),
            prefix_detected=int(payload.get("prefix_detected", 0)),
            prefix_stop_reason=payload.get("prefix_stop_reason"),
            prefix_sequences=[
                TestSequence.from_json(seq)
                for seq in payload.get("prefix_sequences", [])
            ],
        )
        campaign.sequences = [
            result.sequence for result in fault_results if result.sequence is not None
        ]
        return campaign

    @classmethod
    def merge(cls, parts: List["CampaignResult"]) -> "CampaignResult":
        """Merge partial campaign results over disjoint fault sets.

        Every counter is summed and the per-fault lists are concatenated in
        input order; ``cpu_seconds`` adds up too (it is *CPU* time — for the
        wall-clock time of a parallel campaign see the orchestrator, whose
        merged result measures the coordinator's elapsed time instead).  All
        parts must describe the same circuit.
        """
        if not parts:
            raise ValueError("cannot merge an empty list of campaign results")
        names = {part.circuit_name for part in parts}
        if len(names) != 1:
            raise ValueError(f"refusing to merge campaigns of different circuits: {sorted(names)}")
        merged = cls(circuit_name=parts[0].circuit_name, total_faults=0)
        for part in parts:
            merged.total_faults += part.total_faults
            merged.tested += part.tested
            merged.untestable += part.untestable
            merged.aborted += part.aborted
            merged.pattern_count += part.pattern_count
            merged.cpu_seconds += part.cpu_seconds
            merged.sequences.extend(part.sequences)
            merged.fault_results.extend(part.fault_results)
            merged.untestable_local += part.untestable_local
            merged.untestable_sequential += part.untestable_sequential
            merged.aborted_local += part.aborted_local
            merged.aborted_sequential += part.aborted_sequential
            merged.targeted += part.targeted
            merged.detected_by_simulation += part.detected_by_simulation
            merged.prefix_applied += part.prefix_applied
            merged.prefix_detected += part.prefix_detected
            if merged.prefix_stop_reason is None:
                merged.prefix_stop_reason = part.prefix_stop_reason
            merged.prefix_sequences.extend(part.prefix_sequences)
        return merged

    def finalize(self, fault_status_counts: Dict[str, int], cpu_seconds: float) -> None:
        """Fill in the Table 3 counters from the final fault-list status."""
        self.tested = fault_status_counts.get(FaultStatus.TESTED.value, 0)
        self.untestable = fault_status_counts.get(FaultStatus.UNTESTABLE.value, 0)
        self.aborted = fault_status_counts.get(FaultStatus.ABORTED.value, 0) + fault_status_counts.get(
            FaultStatus.UNTARGETED.value, 0
        )
        self.cpu_seconds = cpu_seconds

"""Single-frame justification (reverse time processing building block).

Given required values on some signals of the combinational block (typically
pseudo primary outputs), :class:`FrameJustifier` searches for an assignment of
the primary inputs — and, if allowed, of the pseudo primary inputs — that
forces those values in three-valued logic.  The PPI assignments it makes
become the justification goal of the *previous* time frame, which is exactly
how the reverse-time phases of FOGBUSTER (propagation justification and
synchronisation) proceed.

The search is a small PODEM: decisions only on inputs, forward implication by
levelised three-valued simulation, objective-driven backtrace using
controlling values, and a backtrack limit.  The frame simulation goes through
the backend-dispatched implication engine (:mod:`repro.tdgen.implication`):
both alternatives of a decision are submitted as one candidate batch, which
the packed engine evaluates in a single pass over the compiled netlist.  The
backtrace itself goes through the engine's search kernels
(:mod:`repro.tdgen.search`), so the ``backend`` choice selects between the
interpreted recursion (``reference``) and the iterative worklist over the
compiled flat arrays (``packed``).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.fausim.logic_sim import SignalValues
from repro.obs.metrics import resolve_metrics
from repro.tdgen.implication import CandidateFrames, create_implication_engine


@dataclasses.dataclass
class JustificationResult:
    """Outcome of a single-frame justification."""

    success: bool
    pi_assignment: Dict[str, int] = dataclasses.field(default_factory=dict)
    ppi_assignment: Dict[str, int] = dataclasses.field(default_factory=dict)
    backtracks: int = 0
    aborted: bool = False

    def __bool__(self) -> bool:
        return self.success


@dataclasses.dataclass
class _Decision:
    """One decision node with the batched frames of its candidate values."""

    name: str
    is_pi: bool
    alternatives: List[int]
    frames: CandidateFrames
    cursor: int = 0


class FrameJustifier:
    """Justify value requirements within one combinational time frame.

    Args:
        circuit: the circuit whose combinational block is searched.
        backtrack_limit: abort after this many backtracks (paper: 100 for the
            sequential generator).
        decide_ppis: whether pseudo primary inputs may be assigned.  The
            synchronisation phase allows it (the assignments become the goal of
            the previous frame); a pure input-vector search does not.
        prefer_few_ppi_assignments: accepted for API stability; the
            backtrace always lands on primary inputs before pseudo primary
            inputs (so the previous-frame goal stays as small as possible)
            regardless of this flag.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`
            (defaults to the no-op null registry); counts frame implication
            sweeps.
        backend: implication engine backend used for the frame simulation
            (``None`` selects the process default).
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 100,
        decide_ppis: bool = True,
        prefer_few_ppi_assignments: bool = True,
        metrics: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.decide_ppis = decide_ppis
        self.prefer_few_ppi_assignments = prefer_few_ppi_assignments
        self.metrics = resolve_metrics(metrics)
        self._implication = create_implication_engine(circuit, backend=backend)
        self._implication.set_metrics(self.metrics, site="justification")
        #: Search kernels of the same backend: the controlling-value
        #: backtrace (see :mod:`repro.tdgen.search`).
        self._kernels = self._implication.search_kernels()

    def justify(
        self,
        objectives: Dict[str, int],
        fixed_ppis: Optional[Dict[str, int]] = None,
        fixed_pis: Optional[Dict[str, int]] = None,
        deadline: Optional[float] = None,
    ) -> JustificationResult:
        """Search for an assignment meeting all objectives.

        Args:
            objectives: required value per signal (usually PPO signals, but any
                combinational signal is allowed).
            fixed_ppis: pseudo primary input values that are already known and
                must not be re-decided.
            fixed_pis: primary input values that are already fixed.
            deadline: optional :func:`time.perf_counter` timestamp after which
                the search gives up; an expired search counts as aborted.
        """
        fixed_ppis = dict(fixed_ppis or {})
        fixed_pis = dict(fixed_pis or {})
        pi_values: Dict[str, Optional[int]] = {
            pi: fixed_pis.get(pi) for pi in self.circuit.primary_inputs
        }
        ppi_values: Dict[str, Optional[int]] = {
            ppi: fixed_ppis.get(ppi) for ppi in self.circuit.pseudo_primary_inputs
        }

        stack: List[_Decision] = []
        backtracks = 0

        # Frame of the initial (fixed-only) assignment; later frames come
        # from the decision nodes' candidate batches.  The (batch, cursor)
        # handle travels alongside the frame view so the search kernels can
        # read the packed planes directly.
        root_frames = self._implication.frame_candidates(pi_values, ppi_values, (None,))
        if self.metrics.enabled:
            self.metrics.inc("repro_implication_sweeps_total", site="justification")
        frames, cursor = root_frames, 0
        frame = root_frames.frame(0)

        while True:
            if deadline is not None and time.perf_counter() > deadline:
                return JustificationResult(success=False, backtracks=backtracks, aborted=True)
            status = self._classify(frame, objectives)
            if status == "success":
                return JustificationResult(
                    success=True,
                    pi_assignment={
                        pi: value for pi, value in pi_values.items()
                        if value is not None and pi not in fixed_pis
                    },
                    ppi_assignment={
                        ppi: value for ppi, value in ppi_values.items()
                        if value is not None and ppi not in fixed_ppis
                    },
                    backtracks=backtracks,
                )
            if status == "conflict":
                flipped = False
                while stack:
                    decision = stack[-1]
                    self._unassign(decision, pi_values, ppi_values)
                    if decision.alternatives:
                        value = decision.alternatives.pop(0)
                        self._assign(decision, value, pi_values, ppi_values)
                        decision.cursor += 1
                        frames, cursor = decision.frames, decision.cursor
                        frame = frames.frame(cursor)
                        backtracks += 1
                        flipped = True
                        break
                    stack.pop()
                if not flipped:
                    return JustificationResult(success=False, backtracks=backtracks)
                if backtracks > self.backtrack_limit:
                    return JustificationResult(success=False, backtracks=backtracks, aborted=True)
                continue

            decision_key = self._next_decision(
                frames, cursor, frame, objectives, pi_values, ppi_values
            )
            if decision_key is None:
                # Nothing left to decide and objectives are still open: force a
                # backtrack by treating this as a conflict.
                if not stack:
                    return JustificationResult(success=False, backtracks=backtracks)
                decision = stack[-1]
                self._unassign(decision, pi_values, ppi_values)
                if decision.alternatives:
                    self._assign(decision, decision.alternatives.pop(0), pi_values, ppi_values)
                    decision.cursor += 1
                    frames, cursor = decision.frames, decision.cursor
                    frame = frames.frame(cursor)
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return JustificationResult(
                            success=False, backtracks=backtracks, aborted=True
                        )
                else:
                    stack.pop()
                    # Back to the popped node's prefix: its frame is the
                    # parent's current candidate (or the root frame).
                    frames, cursor = (
                        (stack[-1].frames, stack[-1].cursor)
                        if stack
                        else (root_frames, 0)
                    )
                    frame = frames.frame(cursor)
                continue

            name, is_pi, preferred = decision_key
            # Evaluate both alternatives of the new decision in one batch.
            batch = self._implication.frame_candidates(
                pi_values, ppi_values,
                [(name, is_pi, preferred), (name, is_pi, 1 - preferred)],
            )
            if self.metrics.enabled:
                self.metrics.inc("repro_implication_sweeps_total", site="justification")
            decision = _Decision(
                name=name, is_pi=is_pi, alternatives=[1 - preferred], frames=batch
            )
            self._assign(decision, preferred, pi_values, ppi_values)
            frames, cursor = batch, 0
            frame = batch.frame(0)
            stack.append(decision)

    @staticmethod
    def _classify(frame: SignalValues, objectives: Dict[str, int]) -> str:
        met = True
        for signal, target in objectives.items():
            value = frame[signal]
            if value is None:
                met = False
            elif value != target:
                return "conflict"
        return "success" if met else "continue"

    def _next_decision(
        self,
        frames: CandidateFrames,
        cursor: int,
        frame: SignalValues,
        objectives: Dict[str, int],
        pi_values: Dict[str, Optional[int]],
        ppi_values: Dict[str, Optional[int]],
    ) -> Optional[Tuple[str, bool, int]]:
        """Backtrace the first open objective to an unassigned input.

        The controlling-value backtrace runs through the search kernels; it
        explores alternative fanin branches depth-first and prefers landing
        on a primary input over a pseudo primary input (PPI assignments
        become requirements on the previous time frame, so the reverse-time
        phases want as few of them as possible).
        """
        for signal, target in objectives.items():
            if frame[signal] is None:
                traced = self._kernels.justification_backtrace(
                    frames, cursor, signal, target,
                    pi_values, ppi_values, self.decide_ppis,
                )
                if traced is not None:
                    return traced
        # Fall back to any free input.
        for pi, value in pi_values.items():
            if value is None:
                return (pi, True, 0)
        if self.decide_ppis:
            for ppi, value in ppi_values.items():
                if value is None:
                    return (ppi, False, 0)
        return None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _assign(
        decision: _Decision,
        value: int,
        pi_values: Dict[str, Optional[int]],
        ppi_values: Dict[str, Optional[int]],
    ) -> None:
        if decision.is_pi:
            pi_values[decision.name] = value
        else:
            ppi_values[decision.name] = value

    @staticmethod
    def _unassign(
        decision: _Decision,
        pi_values: Dict[str, Optional[int]],
        ppi_values: Dict[str, Optional[int]],
    ) -> None:
        if decision.is_pi:
            pi_values[decision.name] = None
        else:
            ppi_values[decision.name] = None

"""Programmatic circuit construction API.

:class:`CircuitBuilder` offers a small fluent interface for building circuits
in tests, examples and the surrogate benchmark generator without writing
``.bench`` text by hand::

    builder = CircuitBuilder("toggle")
    clk_in = builder.input("enable")
    state = builder.dff("q", "next_q")       # declares the PPI, data hooked later
    builder.xor("next_q", ["enable", "q"])
    builder.output("q")
    circuit = builder.build()
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.circuit.gates import GateType
from repro.circuit.netlist import Circuit
from repro.circuit.validate import validate_circuit


class CircuitBuilder:
    """Incremental builder with validation at :meth:`build` time."""

    def __init__(self, name: str = "circuit") -> None:
        self._circuit = Circuit(name)
        self._deferred_dffs: List[tuple] = []

    # -- sources ---------------------------------------------------------
    def input(self, name: str) -> str:
        """Declare a primary input and return its signal name."""
        self._circuit.add_input(name)
        return name

    def inputs(self, names: Iterable[str]) -> List[str]:
        """Declare several primary inputs."""
        return [self.input(name) for name in names]

    def dff(self, output: str, data: str) -> str:
        """Declare a D flip-flop driving ``output`` and latching ``data``.

        ``data`` may be defined later; the connection is resolved at build
        time.
        """
        self._deferred_dffs.append((output, data))
        return output

    # -- gates -----------------------------------------------------------
    def gate(self, gate_type: GateType, output: str, fanin: Sequence[str]) -> str:
        """Add an arbitrary combinational gate."""
        self._deferred_gate(output, gate_type, fanin)
        return output

    def and_(self, output: str, fanin: Sequence[str]) -> str:
        """Add an AND gate driving ``output``."""
        return self.gate(GateType.AND, output, fanin)

    def nand(self, output: str, fanin: Sequence[str]) -> str:
        """Add a NAND gate driving ``output``."""
        return self.gate(GateType.NAND, output, fanin)

    def or_(self, output: str, fanin: Sequence[str]) -> str:
        """Add an OR gate driving ``output``."""
        return self.gate(GateType.OR, output, fanin)

    def nor(self, output: str, fanin: Sequence[str]) -> str:
        """Add a NOR gate driving ``output``."""
        return self.gate(GateType.NOR, output, fanin)

    def xor(self, output: str, fanin: Sequence[str]) -> str:
        """Add an XOR gate driving ``output``."""
        return self.gate(GateType.XOR, output, fanin)

    def xnor(self, output: str, fanin: Sequence[str]) -> str:
        """Add an XNOR gate driving ``output``."""
        return self.gate(GateType.XNOR, output, fanin)

    def not_(self, output: str, source: str) -> str:
        """Add an inverter driving ``output`` from ``source``."""
        return self.gate(GateType.NOT, output, [source])

    def buf(self, output: str, source: str) -> str:
        """Add a buffer driving ``output`` from ``source``."""
        return self.gate(GateType.BUF, output, [source])

    # -- sinks -----------------------------------------------------------
    def output(self, name: str) -> str:
        """Mark a signal as a primary output."""
        self._circuit.add_output(name)
        return name

    def outputs(self, names: Iterable[str]) -> List[str]:
        """Mark several signals as primary outputs."""
        return [self.output(name) for name in names]

    # -- finalisation ----------------------------------------------------
    def build(self, validate: bool = True) -> Circuit:
        """Resolve deferred flip-flops, optionally validate, and return the circuit."""
        for output, data in self._deferred_dffs:
            self._circuit.add_gate(output, GateType.DFF, [data])
        self._deferred_dffs = []
        if validate:
            validate_circuit(self._circuit)
        return self._circuit

    # -- internals -------------------------------------------------------
    def _deferred_gate(self, output: str, gate_type: GateType, fanin: Sequence[str]) -> None:
        self._circuit.add_gate(output, gate_type, list(fanin))

"""Random-pattern prefix of the hybrid campaign (Phase A).

The deterministic TDgen/SEMILET search is the expensive half of every
campaign, yet a large share of the fault universe is detectable by the first
few random sequences.  This module implements the classic two-phase ATPG
split on top of the repo's fault-parallel machinery:

1. **Generate** seeded random test sequences through the shared generator
   (:mod:`repro.core.randseq` — the same draw order as the random baseline).
   Every sequence's seed is derived from the campaign seed and the sequence
   index alone (:func:`derive_prefix_seed`), so a resumed prefix regenerates
   sequence ``k`` without replaying the RNG history of sequences ``0..k-1``.
2. **Grade** each sequence against the entire *remaining* fault universe
   word-parallel (:func:`repro.core.verify.grade_test_sequence`: the good
   machine in slot 0, one gross-delay faulty machine per remaining word
   slot).  The gross-delay grade is the cheap necessary condition — a
   superset of what the eight-valued rule credits.
3. **Confirm** the candidates through the exact eight-valued TDsim/CPT pass
   (:func:`repro.core.flow.simulate_sequence_detections`), so a fault is
   credited to a random sequence under precisely the same robust-detection
   rule the deterministic flow applies to its own sequences.  Only confirmed
   faults are dropped from the universe.
4. **Stop adaptively**: when a full sliding window of recent sequences
   credits fewer than the threshold of new detections, when the sequence
   budget (or the campaign deadline) is exhausted, or when nothing remains —
   and hand the residue to Phase B, the deterministic flow.

Everything here is a pure function of (circuit, universe, config): Phase A
runs single-threaded before any sharding, which is what lets the orchestrator
keep the hybrid campaign bit-identical across worker counts, partition modes
and interrupt/resume cycles.  :class:`RandomPrefixEngine` accepts the usual
``backend`` parameter for its grading/confirmation simulators (``reference``,
``packed``, ``bigint``, ``numpy``); all backends are bit-identical by
contract, so the choice is purely a wall-clock knob — ``bigint`` grades the
whole universe fastest (see ``BENCH_kernels.json``).
"""

from __future__ import annotations

import collections
import dataclasses
import logging
import random
import time
import zlib
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.algebra.values import pi_value
from repro.circuit.netlist import Circuit
from repro.core.flow import simulate_sequence_detections
from repro.core.randseq import random_test_sequence
from repro.core.results import CampaignResult, TestSequence
from repro.core.verify import grade_test_sequence
from repro.faults.model import FaultList, GateDelayFault
from repro.fausim.backends import create_simulator, resolve_backend
from repro.obs.metrics import resolve_metrics
from repro.tdgen.context import TDgenContext
from repro.tdsim.cpt import DelayFaultSimulator

logger = logging.getLogger(__name__)

#: Stop reasons reported by :meth:`RandomPrefixEngine.run`.
STOP_WINDOW = "window"
STOP_BUDGET = "budget"
STOP_EXHAUSTED = "exhausted"
STOP_DEADLINE = "deadline"


def derive_prefix_seed(campaign_seed: int, sequence_index: int) -> int:
    """Deterministic seed of prefix sequence ``sequence_index``.

    Mirrors :func:`repro.orchestrate.partition.derive_shard_seed`: a
    :func:`zlib.crc32` over an explicit token (never :func:`hash`, which is
    randomised per process) mixed with the campaign seed, so the prefix is
    reproducible run-to-run, across machines, and — because each sequence's
    seed depends only on its index — resumable mid-prefix without replaying
    the generator history.
    """
    token = f"repro-prefix:{campaign_seed}:{sequence_index}".encode("utf-8")
    return (zlib.crc32(token) ^ ((campaign_seed * 0x9E3779B1) & 0xFFFFFFFF)) & 0x7FFFFFFF


@dataclasses.dataclass(frozen=True)
class PrefixConfig:
    """Settings of the random-pattern prefix phase.

    Args:
        budget: hard cap on the number of random sequences applied.
        window: size of the sliding window of the adaptive stopping rule.
        min_window_detections: keep generating while the last ``window``
            sequences credited at least this many new faults; a full window
            below the threshold hands the residue to Phase B.
        sequence_length: frames per random sequence (initialisation frames +
            the two-pattern test + propagation frames).
        seed: the campaign seed; every sequence derives its own RNG seed from
            it via :func:`derive_prefix_seed`.
    """

    budget: int = 256
    window: int = 16
    min_window_detections: int = 1
    sequence_length: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ValueError("prefix budget must be >= 1")
        if self.window < 1:
            raise ValueError("prefix window must be >= 1")
        if self.sequence_length < 2:
            raise ValueError("a delay test needs at least two frames")


@dataclasses.dataclass
class PrefixRecord:
    """Outcome of one applied prefix sequence (one journal record).

    ``detections`` holds the faults *credited* to this sequence — gross-grade
    candidates confirmed by the TDsim pass, in universe enumeration order.
    ``sequence`` is kept (and journaled) only when it credited at least one
    fault; sequences that detect nothing are recorded as bare counters so a
    resumed prefix can rebuild the stopping-rule window exactly.
    """

    seq: int
    candidates: int
    detections: List[GateDelayFault]
    sequence: Optional[TestSequence] = None

    def to_journal(self) -> Dict[str, object]:
        """The JSONL journal form of this record (``type: "prefix"``)."""
        return {
            "type": "prefix",
            "seq": self.seq,
            "candidates": self.candidates,
            "detections": [fault.to_json() for fault in self.detections],
            "sequence": self.sequence.to_json() if self.sequence is not None else None,
        }

    @classmethod
    def from_journal(cls, payload: Dict[str, object]) -> "PrefixRecord":
        """Rebuild a record from its :meth:`to_journal` form."""
        sequence = payload.get("sequence")
        return cls(
            seq=int(payload["seq"]),
            candidates=int(payload.get("candidates", 0)),
            detections=[
                GateDelayFault.from_json(fault) for fault in payload["detections"]
            ],
            sequence=TestSequence.from_json(sequence) if sequence is not None else None,
        )


@dataclasses.dataclass
class PrefixOutcome:
    """Everything Phase A hands to Phase B and to the campaign bookkeeping."""

    records: List[PrefixRecord]
    detected: List[GateDelayFault]
    stop_reason: str

    @property
    def applied(self) -> int:
        """Number of random sequences generated and graded."""
        return len(self.records)

    @property
    def kept_sequences(self) -> List[TestSequence]:
        """The sequences that credited at least one fault, in order."""
        return [
            record.sequence for record in self.records if record.sequence is not None
        ]


class RandomPrefixEngine:
    """Phase A of the hybrid campaign: grade random sequences, strip faults.

    Args:
        circuit: circuit under test.
        config: prefix settings (:class:`PrefixConfig`).
        robust: the campaign's fault model — threads into the confirming
            TDsim pass so prefix crediting follows the same rule as the
            deterministic sequences.
        fill_value: deterministic fill for state bits the initialisation
            frames leave unknown, mirroring the flow's sequence assembly.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`; the
            prefix phase counts sequences graded, candidate detections and
            credited detections on it.
        backend: simulation backend (see :mod:`repro.fausim.backends`) used
            for the word-parallel grading, the initialisation-state replay
            and the TDsim confirmation.
    """

    def __init__(
        self,
        circuit: Circuit,
        config: PrefixConfig,
        robust: bool = True,
        fill_value: int = 0,
        metrics: Optional[object] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.circuit = circuit
        self.config = config
        self.robust = robust
        self.fill_value = fill_value
        self.metrics = resolve_metrics(metrics)
        self.backend = resolve_backend(backend)
        self.context = TDgenContext(circuit)
        self.fault_simulator = DelayFaultSimulator(
            circuit,
            robust=robust,
            context=self.context,
            metrics=self.metrics,
            backend=self.backend,
        )
        self._logic_simulator = create_simulator(circuit, self.backend)
        self._logic_simulator.metrics = self.metrics

    # ------------------------------------------------------------------ #
    # sequence construction
    # ------------------------------------------------------------------ #
    def generate_sequence(
        self, sequence_index: int, template_fault: GateDelayFault
    ) -> TestSequence:
        """Draw prefix sequence ``sequence_index`` and attach its algebra view.

        The sequence is a pure function of (circuit, config, index): its RNG
        is seeded by :func:`derive_prefix_seed` alone, so any resume or
        re-run regenerates the identical sequence.
        """
        rng = random.Random(derive_prefix_seed(self.config.seed, sequence_index))
        sequence = random_test_sequence(
            rng, self.circuit, self.config.sequence_length, template_fault
        )
        self._attach_pair_view(sequence)
        return sequence

    def _attach_pair_view(self, sequence: TestSequence) -> None:
        """Fill ``pi_pair_values`` / ``ppi_initial_values`` for the TDsim pass.

        The initial state at ``v1`` is whatever the initialisation frames
        provably establish from the all-unknown power-up state; remaining
        don't-care bits take the campaign's fill value — exactly the
        assumption :meth:`~repro.core.flow.SequentialDelayATPG._assemble_sequence`
        makes for deterministic sequences.
        """
        state: Dict[str, Optional[int]] = {}
        for vector in sequence.initialization_vectors:
            state = self._logic_simulator.clock(vector, state).next_state
        sequence.ppi_initial_values = {
            ppi: state[ppi] if state.get(ppi) is not None else self.fill_value
            for ppi in self.circuit.pseudo_primary_inputs
        }
        sequence.pi_pair_values = {
            pi: pi_value(sequence.v1[pi], sequence.v2[pi])
            for pi in self.circuit.primary_inputs
        }

    # ------------------------------------------------------------------ #
    # grading + confirmation
    # ------------------------------------------------------------------ #
    def evaluate(
        self, sequence: TestSequence, remaining: Sequence[GateDelayFault]
    ) -> Tuple[List[GateDelayFault], int]:
        """Credit one sequence: word-parallel grade, then TDsim confirmation.

        Returns ``(credited, candidates)``: the faults of ``remaining`` the
        sequence detects under the eight-valued rule (in input order) and the
        number of gross-delay candidates the cheap grade produced.  The
        expensive TDsim pass runs only when the grade found candidates.
        """
        grades = grade_test_sequence(
            self.circuit, sequence, remaining, backend=self.backend
        )
        candidates = [grade.fault for grade in grades if grade.detected]
        if not candidates:
            return [], 0
        confirmed = set(
            simulate_sequence_detections(
                self.circuit, self.context, self.fault_simulator, sequence, self.backend
            )
        )
        credited = [fault for fault in candidates if fault in confirmed]
        return credited, len(candidates)

    # ------------------------------------------------------------------ #
    # the phase-A loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        faults: Sequence[GateDelayFault],
        deadline: Optional[float] = None,
        replay: Sequence[PrefixRecord] = (),
        on_record: Optional[Callable[[PrefixRecord], None]] = None,
    ) -> PrefixOutcome:
        """Run (or resume) the prefix phase over ``faults``.

        Args:
            faults: the campaign fault universe in enumeration order.
            deadline: optional :func:`time.perf_counter` timestamp; reaching
                it stops the phase with reason ``"deadline"`` (serial
                time-limited campaigns only — a deadline stop is wall-clock
                dependent and therefore not bit-reproducible).
            replay: journaled records of an interrupted prefix, in sequence
                order; their detections are applied without re-grading and
                the stopping-rule window is rebuilt from their counters, so
                generation continues exactly where the interrupted run left
                off.
            on_record: called with every *newly applied* sequence's record
                (replayed records are not re-emitted); the orchestrator
                journals and streams them from here.
        """
        remaining: List[GateDelayFault] = list(faults)
        remaining_set = set(remaining)
        records: List[PrefixRecord] = []
        detected: List[GateDelayFault] = []
        window: collections.deque = collections.deque(maxlen=self.config.window)
        next_seq = 0

        for record in replay:
            if record.seq != next_seq:
                raise ValueError(
                    f"prefix records out of order: expected seq {next_seq}, "
                    f"got {record.seq}"
                )
            next_seq += 1
            window.append(len(record.detections))
            records.append(record)
            if self.metrics.enabled:
                self.metrics.inc("repro_prefix_sequences_total")
                self.metrics.inc("repro_prefix_candidates_total", record.candidates)
                self.metrics.inc(
                    "repro_prefix_detections_total", len(record.detections)
                )
            if record.detections:
                detected.extend(record.detections)
                dropped = set(record.detections)
                remaining_set -= dropped
                remaining = [fault for fault in remaining if fault not in dropped]

        def _finish(reason: str) -> PrefixOutcome:
            logger.info(
                "prefix phase done: sequences=%d detected=%d stop=%s",
                len(records), len(detected), reason,
            )
            return PrefixOutcome(records, detected, reason)

        while True:
            if not remaining:
                return _finish(STOP_EXHAUSTED)
            if next_seq >= self.config.budget:
                return _finish(STOP_BUDGET)
            if (
                len(window) == self.config.window
                and sum(window) < self.config.min_window_detections
            ):
                return _finish(STOP_WINDOW)
            if deadline is not None and time.perf_counter() > deadline:
                return _finish(STOP_DEADLINE)

            sequence = self.generate_sequence(next_seq, remaining[0])
            credited, candidates = self.evaluate(sequence, remaining)
            record = PrefixRecord(
                seq=next_seq,
                candidates=candidates,
                detections=credited,
                sequence=sequence if credited else None,
            )
            next_seq += 1
            window.append(len(credited))
            records.append(record)
            if self.metrics.enabled:
                self.metrics.inc("repro_prefix_sequences_total")
                self.metrics.inc("repro_prefix_candidates_total", candidates)
                self.metrics.inc("repro_prefix_detections_total", len(credited))
            if credited:
                detected.extend(credited)
                dropped = set(credited)
                remaining_set -= dropped
                remaining = [fault for fault in remaining if fault not in dropped]
            if on_record is not None:
                on_record(record)


def apply_prefix_outcome(
    campaign: CampaignResult, fault_list: FaultList, outcome: PrefixOutcome
) -> None:
    """Fold a finished prefix phase into the campaign bookkeeping.

    Marks every credited fault tested, seeds the campaign's prefix counters
    and counts the kept sequences' patterns — the one crediting path shared
    by the serial hybrid flow (:meth:`~repro.core.flow.SequentialDelayATPG.run`)
    and the orchestrator's replay merge, which is what keeps hybrid results
    bit-identical across worker counts and resumes.
    """
    fault_list.mark_tested(outcome.detected)
    campaign.prefix_applied = outcome.applied
    campaign.prefix_detected = len(outcome.detected)
    campaign.prefix_stop_reason = outcome.stop_reason
    for sequence in outcome.kept_sequences:
        campaign.prefix_sequences.append(sequence)
        campaign.pattern_count += sequence.pattern_count

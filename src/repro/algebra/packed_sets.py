"""Word-packed eight-plane *set* propagation on the compiled netlist.

:mod:`repro.algebra.packed` evaluates one concrete eight-valued *value* per
pattern slot; the search side of the flow (TDgen's forward implication,
TDsim's reference fallbacks) instead propagates *sets of still-possible
values* per signal.  This module extends the one-hot multi-plane encoding to
sets: every signal carries eight bit planes and bit ``j`` of plane ``v`` is
set when value index ``v`` is a member of pattern slot ``j``'s possibility
set.  A slot with no plane bit set carries the empty set (a conflict).

The crucial observation is that :func:`repro.algebra.packed.packed_pair`
already implements exact set propagation under this reading::

    out[table[a][b]] |= a_planes[a] & b_planes[b]

unions the gate image over every *member pair* of the two input sets, which
is precisely :func:`repro.algebra.sets.evaluate_gate_sets`'s pairwise image —
for all word slots at once.  Emptiness propagates for free: a slot empty in
either input is empty in the output, matching the reference's empty-set
short-circuit.

:class:`PackedSetSimulator` runs this set evaluation over the flat gate
program of :mod:`repro.fausim.compile`, with fault-injection *moves* (convert
the activating transition into its fault-carrying variant on selected slots)
applied at stem outputs and at single fanout-branch pins, mirroring the
reference injection of :mod:`repro.tdgen.simulation`.  Each of the word's
slots therefore carries one independent candidate assignment — a decision
alternative, a candidate frame, or a fault-free/faulty pair — and one pass
over the gate program implies all of them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.packed import (
    NOT_PERMUTATION,
    NUM_PLANES,
    core_of,
    packed_not,
    packed_table,
)
from repro.algebra.sets import ValueSet
from repro.circuit.gates import GateType
from repro.fausim.compile import _OPCODES, OP_BUF, OP_NOT, CompiledCircuit
from repro.obs.metrics import NULL_REGISTRY

#: Plane list of one signal: ``planes[v]`` holds the slots whose possibility
#: set contains the value with index ``v`` (multiple planes may carry the
#: same slot bit — that is what makes it a *set* encoding).
SetPlanes = List[int]

#: An injection move: convert value index ``source`` into value index
#: ``target`` on the slots selected by ``mask`` (the reference ``_inject``
#: with the activation/fault-value pair flattened to indices).
Move = Tuple[int, int, int]

#: Opcode -> (two-input core gate type, apply inverter permutation after the
#: fold), shared with the fault-parallel value simulator so the compiled set
#: evaluation cannot drift from the compiler's opcode map.
OP_CORE: Dict[int, Tuple[GateType, bool]] = {
    opcode: core_of(gate_type)
    for gate_type, opcode in _OPCODES.items()
    if gate_type not in (GateType.NOT, GateType.BUF)
}


def pack_value_sets(sets: Sequence[ValueSet]) -> SetPlanes:
    """Pack one signal's possibility set across slots into eight planes."""
    planes = [0] * NUM_PLANES
    for slot_index, value_set in enumerate(sets):
        bit = 1 << slot_index
        remaining = value_set
        while remaining:
            low = remaining & -remaining
            planes[low.bit_length() - 1] |= bit
            remaining ^= low
    return planes


def unpack_value_sets(planes: Sequence[int], width: int) -> List[ValueSet]:
    """Expand packed set planes back into one :class:`ValueSet` per slot."""
    sets = [0] * width
    for index, plane in enumerate(planes):
        plane &= (1 << width) - 1
        mask = 1 << index
        while plane:
            low = plane & -plane
            sets[low.bit_length() - 1] |= mask
            plane ^= low
    return sets


def slot_set(planes: Sequence[int], pattern: int) -> ValueSet:
    """The possibility set carried by one slot (column read of the planes)."""
    mask = 0
    for index in range(NUM_PLANES):
        if (planes[index] >> pattern) & 1:
            mask |= 1 << index
    return mask


def apply_move(planes: SetPlanes, move: Move) -> None:
    """Apply one injection move in place.

    On every slot selected by the move's mask that contains the source value,
    the source value is removed and the target value added — exactly the
    reference ``_inject`` (slots without the source value are untouched, and
    other members of the set survive).
    """
    source, target, mask = move
    moved = planes[source] & mask
    if moved:
        planes[source] &= ~moved
        planes[target] |= moved


@dataclasses.dataclass
class PackedSetResult:
    """Outcome of one packed set-propagation pass.

    Attributes:
        planes: per signal slot, the eight set planes after propagation.
        width: number of valid pattern slots.
        conflict_mask: slots in which some signal's set became empty, as a
            bit mask.
        conflict_signals: first signal (in evaluation order) whose set became
            empty, per conflicted slot index.
    """

    planes: List[SetPlanes]
    width: int
    conflict_mask: int
    conflict_signals: Dict[int, str]

    def slot_sets(self, slot: int, pattern: int) -> ValueSet:
        """Possibility set of one signal slot in one pattern slot."""
        return slot_set(self.planes[slot], pattern)


class PackedSetSimulator:
    """Set propagation over one compiled circuit, one candidate per word slot.

    Args:
        compiled: the compiled gate program to run (see
            :func:`repro.fausim.compile.compile_circuit`).
        robust: use the robust (paper Table 1) or relaxed non-robust tables.
    """

    #: Metrics registry counting wavefront gate evaluations/skips: at most
    #: two registry calls per sweep, never one per gate (no-op by default).
    metrics = NULL_REGISTRY

    def __init__(self, compiled: CompiledCircuit, robust: bool = True) -> None:
        self.compiled = compiled
        self.robust = robust
        # Per opcode: the core fold table and the table of the *final* fold
        # step.  For inverting gates (NAND/NOR/XNOR) the inverter permutation
        # is pre-composed into the final table, so the hot loop never runs a
        # separate NOT pass over the folded planes.
        self._tables: Dict[int, Tuple[Tuple[Tuple[int, ...], ...], Tuple[Tuple[int, ...], ...]]] = {}
        for opcode, (core, invert) in OP_CORE.items():
            base = packed_table(core, robust)
            if invert:
                last = tuple(
                    tuple(NOT_PERMUTATION[value] for value in row) for row in base
                )
            else:
                last = base
            self._tables[opcode] = (base, last)

    def propagate(
        self,
        source_planes: List[SetPlanes],
        width: int,
        stem_moves: Optional[Mapping[int, Sequence[Move]]] = None,
        branch_moves: Optional[Mapping[int, Sequence[Move]]] = None,
        gate_indices: Optional[Sequence[int]] = None,
        base_sets: Optional[Sequence[ValueSet]] = None,
        changed_slots: Optional[Sequence[int]] = None,
    ) -> PackedSetResult:
        """Run the gate program over pre-loaded source set planes.

        Args:
            source_planes: one plane list per signal slot; the PI/PPI slots
                must be loaded (including any source-stem injection), gate
                slots are overwritten.
            width: number of valid pattern slots.
            stem_moves: injection moves keyed by *gate output* slot, applied
                right after the gate is evaluated (a stem fault on a gate
                output — every sink sees the injected set).
            branch_moves: injection moves keyed by flat fanin position,
                applied to the set *read* at that one (gate, pin) only (a
                fanout-branch fault — the stem keeps its fault-free set).
            gate_indices: restrict the pass to these gate-program indices, in
                ascending order (incremental cone evaluation); ``None`` runs
                the full program.  Every fanin read outside the subset must
                already hold valid planes.
            base_sets: per-slot sets of the conflict-free *parent* state an
                incremental sweep starts from.  Enables event-driven change
                tracking: a gate none of whose inputs changed relative to
                the parent is skipped outright (its planes entry stays
                ``None`` and readers fall back to the parent column), and a
                gate whose result equals the parent's broadcast does not
                wake its fanout.  Requires ``changed_slots``.
            changed_slots: the source slots whose loaded planes may differ
                from the parent column (the decision variable, re-coupled
                state registers); the transitive wavefront is derived from
                them.

        Returns:
            The evaluated planes plus the per-slot conflict bookkeeping (the
            packed counterpart of recording the first empty set during the
            reference propagation pass).
        """
        stem_moves = stem_moves or {}
        branch_moves = branch_moves or {}
        compiled = self.compiled
        planes = source_planes
        tables = self._tables
        fanin_flat = compiled.fanin_flat
        offsets = compiled.fanin_offsets
        outputs = compiled.outputs
        signal_names = compiled.signal_names
        full = (1 << width) - 1
        conflict_mask = 0
        conflict_signals: Dict[int, str] = {}

        has_branch_moves = bool(branch_moves)
        has_stem_moves = bool(stem_moves)
        ops = compiled.ops
        indices = range(len(ops)) if gate_indices is None else gate_indices

        # Per-slot cache of the nonzero (plane index, plane) entries.  Most
        # possibility sets hold one to four values, so iterating only the
        # occupied planes beats scanning all 8x8 plane pairs per gate; the
        # scan that builds an entry list is paid once per slot per sweep and
        # reused by every fanout read.  The cache lookups are inlined in the
        # loop below — a helper call per fanin read costs more than the scan
        # it saves.
        nonzero: List[Optional[List[Tuple[int, int]]]] = [None] * len(planes)
        branch_positions = frozenset(branch_moves) if has_branch_moves else frozenset()

        # Event-driven mode: gates are evaluated only when an input sits on
        # the change wavefront seeded by ``changed_slots``; everything else
        # keeps its ``None`` planes entry (the parent column answers reads).
        tracking = base_sets is not None
        changed: Optional[bytearray] = None
        if tracking:
            changed = bytearray(len(planes))
            for slot in changed_slots or ():
                changed[slot] = 1

        def base_entries(slot: int) -> List[Tuple[int, int]]:
            """Broadcast entries of an unchanged slot (the parent's value)."""
            entries = []
            remaining = base_sets[slot]
            while remaining:
                low = remaining & -remaining
                entries.append((low.bit_length() - 1, full))
                remaining ^= low
            return entries

        def source_of(slot: int) -> SetPlanes:
            """Plane list of a fanin slot, materialising the parent broadcast."""
            source = planes[slot]
            if source is None:
                source = [0] * NUM_PLANES
                for i, p in base_entries(slot):
                    source[i] = p
            return source

        def injected_entries(position: int) -> List[Tuple[int, int]]:
            """Nonzero planes of one branch-injected (gate, pin) read."""
            source = list(source_of(fanin_flat[position]))
            for move in branch_moves[position]:
                apply_move(source, move)
            return [(i, p) for i, p in enumerate(source) if p]

        evaluated = 0
        for index in indices:
            start = offsets[index]
            end = offsets[index + 1]

            if tracking:
                touched = False
                for position in range(start, end):
                    if changed[fanin_flat[position]]:
                        touched = True
                        break
                if not touched:
                    # No input on the wavefront: the parent's value stands.
                    continue
                evaluated += 1

            op = ops[index]
            arity = end - start

            if arity == 1:
                if start in branch_positions:
                    source = [0] * NUM_PLANES
                    for i, p in injected_entries(start):
                        source[i] = p
                elif tracking:
                    source = source_of(fanin_flat[start])
                else:
                    source = planes[fanin_flat[start]]
                if op == OP_NOT:
                    acc = packed_not(source)
                elif op == OP_BUF:
                    acc = list(source)
                else:
                    base_table, last_table = tables[op]
                    acc = (
                        list(source) if base_table is last_table else packed_not(source)
                    )
            elif arity == 2:
                # Two-input gates dominate; fuse over the occupied planes
                # only.  The fold is inlined (rather than calling
                # :func:`repro.algebra.packed.packed_pair` per step) to keep
                # the hot loop free of per-gate function-call overhead; the
                # final step's table carries any inverter permutation.
                last_table = tables[op][1]
                position_b = start + 1
                if start in branch_positions:
                    a_entries = injected_entries(start)
                else:
                    slot = fanin_flat[start]
                    a_entries = nonzero[slot]
                    if a_entries is None:
                        source = planes[slot]
                        a_entries = (
                            base_entries(slot)
                            if source is None
                            else [(i, p) for i, p in enumerate(source) if p]
                        )
                        nonzero[slot] = a_entries
                if position_b in branch_positions:
                    b_entries = injected_entries(position_b)
                else:
                    slot = fanin_flat[position_b]
                    b_entries = nonzero[slot]
                    if b_entries is None:
                        source = planes[slot]
                        b_entries = (
                            base_entries(slot)
                            if source is None
                            else [(i, p) for i, p in enumerate(source) if p]
                        )
                        nonzero[slot] = b_entries
                acc = [0] * NUM_PLANES
                if b_entries:
                    for a_index, plane_a in a_entries:
                        row = last_table[a_index]
                        for b_index, plane_b in b_entries:
                            both = plane_a & plane_b
                            if both:
                                acc[row[b_index]] |= both
            else:
                base_table, last_table = tables[op]
                if start in branch_positions:
                    acc_entries = injected_entries(start)
                else:
                    slot = fanin_flat[start]
                    acc_entries = nonzero[slot]
                    if acc_entries is None:
                        source = planes[slot]
                        acc_entries = (
                            base_entries(slot)
                            if source is None
                            else [(i, p) for i, p in enumerate(source) if p]
                        )
                        nonzero[slot] = acc_entries
                final_step = arity - 1
                for step in range(1, arity):
                    table = last_table if step == final_step else base_table
                    position = start + step
                    if position in branch_positions:
                        nxt_entries = injected_entries(position)
                    else:
                        slot = fanin_flat[position]
                        nxt_entries = nonzero[slot]
                        if nxt_entries is None:
                            source = planes[slot]
                            nxt_entries = (
                                base_entries(slot)
                                if source is None
                                else [(i, p) for i, p in enumerate(source) if p]
                            )
                            nonzero[slot] = nxt_entries
                    folded = [0] * NUM_PLANES
                    if nxt_entries:
                        for a_index, plane_a in acc_entries:
                            row = table[a_index]
                            for b_index, plane_b in nxt_entries:
                                both = plane_a & plane_b
                                if both:
                                    folded[row[b_index]] |= both
                    if step == final_step:
                        acc = folded
                    else:
                        acc_entries = [(i, p) for i, p in enumerate(folded) if p]

            out = outputs[index]
            if has_stem_moves:
                moves = stem_moves.get(out)
                if moves:
                    for move in moves:
                        apply_move(acc, move)
            planes[out] = acc
            nonzero[out] = None
            if tracking:
                # Wake the fanout only when the result actually left the
                # parent's value (the wavefront dies where sets converge).
                base_value = base_sets[out]
                for value_index in range(NUM_PLANES):
                    expected = full if (base_value >> value_index) & 1 else 0
                    if acc[value_index] != expected:
                        changed[out] = 1
                        break

            live = (
                acc[0] | acc[1] | acc[2] | acc[3]
                | acc[4] | acc[5] | acc[6] | acc[7]
            )
            empty = full & ~live & ~conflict_mask
            if empty:
                conflict_mask |= empty
                name = signal_names[out]
                while empty:
                    low = empty & -empty
                    conflict_signals[low.bit_length() - 1] = name
                    empty ^= low

        metrics = self.metrics
        if metrics.enabled:
            total = len(ops) if gate_indices is None else len(gate_indices)
            if tracking:
                metrics.inc("repro_wavefront_gates_evaluated_total", evaluated)
                if total > evaluated:
                    metrics.inc(
                        "repro_wavefront_gates_skipped_total", total - evaluated
                    )
            else:
                metrics.inc("repro_wavefront_gates_evaluated_total", total)

        return PackedSetResult(
            planes=planes,
            width=width,
            conflict_mask=conflict_mask,
            conflict_signals=conflict_signals,
        )

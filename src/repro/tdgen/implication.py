"""Backend-dispatched forward-implication engine shared by the search side.

PRs 1–2 made the *simulation* side of the flow bit-parallel; this module does
the same for the *search* side.  An :class:`ImplicationEngine` bundles the
three forward evaluations the searching phases replay once per decision
alternative:

* **two-frame eight-valued set implication** — TDgen's
  :func:`~repro.tdgen.simulation.simulate_two_frame` (also the reference
  fallback of TDsim's exact injection checks),
* **single-frame good/faulty pair simulation** — SEMILET's propagation
  PODEM (:mod:`repro.semilet.propagation`),
* **single-frame three-valued simulation** — SEMILET's frame justification
  (:mod:`repro.semilet.justification`).

Every evaluation comes in a scalar form and a *candidate batch* form: the
batch takes the current partial assignment plus one override per candidate
(a decision alternative, a candidate frame) and yields one result per
candidate.  The ``reference`` engine computes batch entries lazily with the
interpreted oracles, so its cost profile is exactly the historical
one-call-per-alternative behaviour; the ``packed`` engine evaluates the whole
batch in one word-parallel pass over the compiled netlist
(:mod:`repro.algebra.packed_sets` for the eight-valued set planes,
:mod:`repro.fausim.packed_sim` for the three-valued planes), one candidate
per word slot, and unpacks only the candidates that are actually consumed.

Engines are registered under the same backend names as the simulation
backends (:mod:`repro.fausim.backends`) and ``backend=None`` resolves to the
same process-wide default, so one ``--backend`` choice governs both fault
simulation and search-side implication::

    engine = create_implication_engine(circuit, backend="packed")
    state = engine.implicate(pi_values, ppi_initial, fault)
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algebra.packed import NUM_PLANES
from repro.algebra.packed_sets import Move, PackedSetSimulator, apply_move
from repro.algebra.sets import ValueSet
from repro.algebra.values import DelayValue, PI_VALUES
from repro.circuit.gates import evaluate_gate
from repro.circuit.netlist import Circuit, LineKind
from repro.faults.model import GateDelayFault
from repro.fausim import backends as _sim_backends
from repro.fausim.bigint_sim import BIGINT_WORD_BITS
from repro.fausim.compile import CompiledCircuit, compile_circuit
from repro.fausim.logic_sim import LogicSimulator, SignalValues
from repro.fausim.numpy_sim import HAVE_NUMPY, NumpyLogicSimulator
from repro.fausim.packed_sim import PackedLogicSimulator, PackedPlanes, WORD_BITS
from repro.obs.metrics import NULL_REGISTRY
from repro.tdgen.context import TDgenContext
from repro.tdgen.simulation import (
    TwoFrameState,
    _inject,
    _ppi_pair_set,
    simulate_two_frame,
)

#: One two-frame candidate: ``(kind, name, value)`` — ``kind`` is ``"pi"``
#: (``value`` is a :class:`DelayValue` pair or ``None``) or ``"ppi"``
#: (``value`` is the initial-frame bit or ``None``).  ``None`` candidates
#: apply no override (the base assignment itself).
TwoFrameCandidate = Optional[Tuple[str, str, object]]

#: One single-frame candidate: ``(name, is_pi, value)`` — the decision tuple
#: shape SEMILET's PODEMs use.
FrameCandidate = Optional[Tuple[str, bool, Optional[int]]]

#: ``(good, faulty)`` machine value of one signal (``None`` encodes X).
PairValue = Tuple[Optional[int], Optional[int]]

#: Memoised :func:`repro.tdgen.simulation._ppi_pair_set` over all nine
#: (initial, final) combinations, for the packed state-register coupling.
_PAIR_SET_TABLE: Dict[Tuple[Optional[int], Optional[int]], ValueSet] = {
    (initial, final): _ppi_pair_set(initial, final)
    for initial in (None, 0, 1)
    for final in (None, 0, 1)
}


class CandidateStates:
    """One two-frame implication result per candidate, possibly lazy."""

    def __len__(self) -> int:
        raise NotImplementedError

    def state(self, index: int) -> TwoFrameState:
        """The :class:`TwoFrameState` of candidate ``index``."""
        raise NotImplementedError


class CandidatePairFrames:
    """One good/faulty pair frame per candidate, possibly lazy."""

    def __len__(self) -> int:
        raise NotImplementedError

    def pairs(self, index: int) -> Dict[str, PairValue]:
        """The per-signal ``(good, faulty)`` values of candidate ``index``."""
        raise NotImplementedError


class CandidateFrames:
    """One three-valued frame per candidate, possibly lazy."""

    def __len__(self) -> int:
        raise NotImplementedError

    def frame(self, index: int) -> SignalValues:
        """The per-signal three-valued frame of candidate ``index``."""
        raise NotImplementedError


class ImplicationEngine:
    """Forward implication services behind one backend choice.

    Subclasses implement the three evaluation kinds; consumers hold exactly
    one engine per circuit and never dispatch on the backend themselves.

    Attributes:
        name: registry name of the backend (``"reference"`` / ``"packed"``).
        circuit: the circuit the engine is bound to.
        robust: whether the robust (paper Table 1) tables are used for the
            eight-valued implication.
        context: shared per-circuit static analysis.
    """

    name = "abstract"
    #: Metrics registry of the owning search engine (no-op by default).
    metrics = NULL_REGISTRY
    #: Sweep-counter label of the owning search engine ("" = unowned).
    metrics_site = ""

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        context: Optional[TDgenContext] = None,
    ) -> None:
        self.circuit = circuit
        self.robust = robust
        self._context = context
        self._search_kernels = None

    def set_metrics(self, metrics: object, site: str) -> None:
        """Attach a metrics registry on behalf of the owning search engine.

        ``site`` names the owner (``tdgen``/``propagation``/``justification``/
        ``tdsim``) and labels the owner's sweep counters.  The engine itself
        only forwards the registry to its event-driven set simulator (when
        the backend has one) so wavefront evaluated/skipped gate counts are
        collected; attaching a registry never changes implication results.
        """
        self.metrics = metrics
        self.metrics_site = site
        sets = getattr(self, "_sets", None)
        if sets is not None:
            sets.metrics = metrics

    def search_kernels(self):
        """The search kernels matching this engine's backend (cached).

        Objective selection, multiple backtrace and the potential-difference
        scan dispatch through the same registry names as the engines (see
        :mod:`repro.tdgen.search`), so the ``--backend`` choice governs the
        search heuristics too; :func:`repro.tdgen.search.
        set_default_search_kernels` overrides the coupling process-wide.
        """
        if self._search_kernels is None:
            from repro.tdgen.search import create_search_kernels

            self._search_kernels = create_search_kernels(self)
        return self._search_kernels

    @property
    def context(self) -> TDgenContext:
        """Shared static analysis, built on first use.

        Lazy because the packed engine works entirely on the compiled
        netlist: constructing the observability-distance tables for every
        SEMILET-owned engine would be wasted whole-circuit work.
        """
        if self._context is None:
            self._context = TDgenContext(self.circuit)
        return self._context

    # -- two-frame eight-valued set implication ------------------------- #
    def implicate(
        self,
        pi_values: Mapping[str, Optional[DelayValue]],
        ppi_initial: Mapping[str, Optional[int]],
        fault: Optional[GateDelayFault] = None,
    ) -> TwoFrameState:
        """Forward implication of the two local time frames (one assignment)."""
        return self.implicate_candidates(pi_values, ppi_initial, fault, (None,)).state(0)

    def implicate_candidates(
        self,
        pi_values: Mapping[str, Optional[DelayValue]],
        ppi_initial: Mapping[str, Optional[int]],
        fault: Optional[GateDelayFault],
        candidates: Sequence[TwoFrameCandidate],
        base: Optional[TwoFrameState] = None,
    ) -> CandidateStates:
        """Implication of the base assignment under one override per candidate.

        Args:
            pi_values: base primary-input pair assignment.
            ppi_initial: base initial-frame PPI assignment.
            fault: the targeted fault shared by every candidate.
            candidates: one ``(kind, name, value)`` override per word slot
                (``None`` entries evaluate the base assignment itself).
            base: the implication of the *base assignment*, if the caller
                already holds it (the parent decision's state).  Engines may
                use it to evaluate the batch incrementally — the packed
                engine re-propagates only the decision variable's influence
                cone — and must produce bit-identical results either way.
        """
        raise NotImplementedError

    # -- single-frame good/faulty pair simulation ------------------------ #
    def pair_frame(
        self,
        pi_values: Mapping[str, Optional[int]],
        good_state: SignalValues,
        faulty_state: SignalValues,
        free_ppi_values: Mapping[str, Optional[int]],
    ) -> Dict[str, PairValue]:
        """Good and faulty machine of one frame in lock step (one assignment)."""
        return self.pair_frame_candidates(
            pi_values, good_state, faulty_state, free_ppi_values, (None,)
        ).pairs(0)

    def pair_frame_candidates(
        self,
        pi_values: Mapping[str, Optional[int]],
        good_state: SignalValues,
        faulty_state: SignalValues,
        free_ppi_values: Mapping[str, Optional[int]],
        candidates: Sequence[FrameCandidate],
    ) -> CandidatePairFrames:
        """Pair simulation of the base frame under one override per candidate."""
        raise NotImplementedError

    # -- single-frame three-valued simulation ---------------------------- #
    def frame(
        self,
        pi_values: Mapping[str, Optional[int]],
        ppi_values: Mapping[str, Optional[int]],
    ) -> SignalValues:
        """Three-valued evaluation of one combinational frame (one assignment)."""
        return self.frame_candidates(pi_values, ppi_values, (None,)).frame(0)

    def frame_candidates(
        self,
        pi_values: Mapping[str, Optional[int]],
        ppi_values: Mapping[str, Optional[int]],
        candidates: Sequence[FrameCandidate],
    ) -> CandidateFrames:
        """Frame evaluation of the base assignment under one override each."""
        raise NotImplementedError


# --------------------------------------------------------------------------- #
# reference engine — the interpreted oracles, computed lazily per candidate
# --------------------------------------------------------------------------- #
class _LazyStates(CandidateStates):
    """Reference candidate states: one interpreter run per consumed index."""

    def __init__(self, engine: "ReferenceImplicationEngine", pi_values, ppi_initial, fault, candidates):
        self._engine = engine
        self._pi_values = dict(pi_values)
        self._ppi_initial = dict(ppi_initial)
        self._fault = fault
        self._candidates = list(candidates)
        self._cache: Dict[int, TwoFrameState] = {}

    def __len__(self) -> int:
        return len(self._candidates)

    def state(self, index: int) -> TwoFrameState:
        """Simulate candidate ``index`` with the reference interpreter."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        pi_values = dict(self._pi_values)
        ppi_initial = dict(self._ppi_initial)
        candidate = self._candidates[index]
        if candidate is not None:
            kind, name, value = candidate
            if kind == "pi":
                pi_values[name] = value
            else:
                ppi_initial[name] = value
        state = simulate_two_frame(
            self._engine.context, pi_values, ppi_initial, self._fault,
            robust=self._engine.robust,
        )
        self._cache[index] = state
        return state


class _LazyPairFrames(CandidatePairFrames):
    """Reference pair frames: one interpreted lock-step run per index."""

    def __init__(self, engine: "ReferenceImplicationEngine", pi_values, good_state, faulty_state, free_ppi_values, candidates):
        self._engine = engine
        self._pi_values = dict(pi_values)
        self._good_state = dict(good_state)
        self._faulty_state = dict(faulty_state)
        self._free_ppi_values = dict(free_ppi_values)
        self._candidates = list(candidates)
        self._cache: Dict[int, Dict[str, PairValue]] = {}

    def __len__(self) -> int:
        return len(self._candidates)

    def pairs(self, index: int) -> Dict[str, PairValue]:
        """Simulate candidate ``index`` with the interpreted pair loop."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        pi_values = dict(self._pi_values)
        free_ppi_values = dict(self._free_ppi_values)
        candidate = self._candidates[index]
        if candidate is not None:
            name, is_pi, value = candidate
            if is_pi:
                pi_values[name] = value
            else:
                free_ppi_values[name] = value
        pairs = self._engine._pair_frame_interpreted(
            pi_values, self._good_state, self._faulty_state, free_ppi_values
        )
        self._cache[index] = pairs
        return pairs


class _LazyFrames(CandidateFrames):
    """Reference frames: one interpreted combinational run per index."""

    def __init__(self, engine: "ReferenceImplicationEngine", pi_values, ppi_values, candidates):
        self._engine = engine
        self._pi_values = dict(pi_values)
        self._ppi_values = dict(ppi_values)
        self._candidates = list(candidates)
        self._cache: Dict[int, SignalValues] = {}

    def __len__(self) -> int:
        return len(self._candidates)

    def frame(self, index: int) -> SignalValues:
        """Simulate candidate ``index`` with the reference logic simulator."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        pi_values = dict(self._pi_values)
        ppi_values = dict(self._ppi_values)
        candidate = self._candidates[index]
        if candidate is not None:
            name, is_pi, value = candidate
            if is_pi:
                pi_values[name] = value
            else:
                ppi_values[name] = value
        pis = {pi: value for pi, value in pi_values.items() if value is not None}
        state = {ppi: value for ppi, value in ppi_values.items() if value is not None}
        frame = self._engine._simulator.combinational(pis, state)
        self._cache[index] = frame
        return frame


class ReferenceImplicationEngine(ImplicationEngine):
    """The interpreted oracles, kept bit-exact with the historical code paths.

    Candidate batches are lazy: a candidate that is never consumed (its
    decision alternative was never flipped to) costs nothing, preserving the
    cost profile of the one-call-per-alternative search loops this engine
    replaces.
    """

    name = "reference"

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        context: Optional[TDgenContext] = None,
    ) -> None:
        super().__init__(circuit, robust=robust, context=context)
        self._simulator = LogicSimulator(circuit)

    def implicate_candidates(
        self, pi_values, ppi_initial, fault, candidates, base=None
    ) -> CandidateStates:
        """Lazy batch of :func:`~repro.tdgen.simulation.simulate_two_frame` runs.

        ``base`` is ignored: the reference engine always re-interprets a
        candidate from scratch, which is exactly the historical cost model.
        """
        return _LazyStates(self, pi_values, ppi_initial, fault, candidates)

    def pair_frame_candidates(
        self, pi_values, good_state, faulty_state, free_ppi_values, candidates
    ) -> CandidatePairFrames:
        """Lazy batch of interpreted good/faulty lock-step frame runs."""
        return _LazyPairFrames(
            self, pi_values, good_state, faulty_state, free_ppi_values, candidates
        )

    def frame_candidates(self, pi_values, ppi_values, candidates) -> CandidateFrames:
        """Lazy batch of reference three-valued combinational runs."""
        return _LazyFrames(self, pi_values, ppi_values, candidates)

    # ------------------------------------------------------------------ #
    def _pair_frame_interpreted(
        self,
        pi_values: Mapping[str, Optional[int]],
        good_state: SignalValues,
        faulty_state: SignalValues,
        free_ppi_values: Mapping[str, Optional[int]],
    ) -> Dict[str, PairValue]:
        """Simulate good and faulty machines of one frame in lock step."""
        circuit = self.circuit
        pairs: Dict[str, PairValue] = {}
        for pi in circuit.primary_inputs:
            value = pi_values.get(pi)
            pairs[pi] = (value, value)
        for ppi in circuit.pseudo_primary_inputs:
            good_value = good_state.get(ppi)
            faulty_value = faulty_state.get(ppi)
            free = free_ppi_values.get(ppi)
            if free is not None:
                # A value required from the fast frame: identical in both
                # machines (the fault effect is only in the explicitly faulty
                # bits).
                good_value = free
                faulty_value = free
            pairs[ppi] = (good_value, faulty_value)
        for name in self.context.order:
            gate = circuit.gate(name)
            good_inputs = [pairs[s][0] for s in gate.fanin]
            faulty_inputs = [pairs[s][1] for s in gate.fanin]
            pairs[name] = (
                evaluate_gate(gate.gate_type, good_inputs),
                evaluate_gate(gate.gate_type, faulty_inputs),
            )
        return pairs


# --------------------------------------------------------------------------- #
# packed engine — one candidate per word slot on the compiled netlist
# --------------------------------------------------------------------------- #
class _LazyColumn(dict):
    """Per-signal dict view of one word slot, unpacked on first access.

    A conflict-classified decision alternative only ever reads a handful of
    signals (the fault line, the observation points), so unpacking all of a
    state's columns eagerly would waste most of the packed engine's win.
    This dict subclass unpacks a signal's column the first time it is
    indexed; bulk views (iteration, ``items``, ``copy``, equality,
    pickling) materialise every signal first so those behave like the eager
    dict.  One caveat: ``dict(lazy_column)`` bypasses every subclass hook
    (CPython copies the underlying storage directly) and must not be used —
    call :meth:`copy` instead for a plain-dict snapshot.
    """

    def __init__(self, slot_of: Mapping[str, int], unpack: Callable[[int], object]) -> None:
        super().__init__()
        self._slot_of = slot_of
        self._unpack = unpack

    def __missing__(self, name: str):
        value = self._unpack(self._slot_of[name])
        self[name] = value
        return value

    def get(self, name, default=None):
        """Mapping ``get`` that unpacks missing-but-known signals."""
        try:
            return self[name]
        except KeyError:
            return default

    def __contains__(self, name) -> bool:
        return name in self._slot_of

    def _materialize(self) -> None:
        missing = len(self._slot_of) - super().__len__()
        if missing:
            unpack = self._unpack
            for name, slot in self._slot_of.items():
                if not super().__contains__(name):
                    self[name] = unpack(slot)

    def __len__(self) -> int:
        return len(self._slot_of)

    def __iter__(self):
        self._materialize()
        return super().__iter__()

    def keys(self):
        """All signal names (materialises the remaining columns)."""
        self._materialize()
        return super().keys()

    def values(self):
        """All signal values (materialises the remaining columns)."""
        self._materialize()
        return super().values()

    def items(self):
        """All (signal, value) pairs (materialises the remaining columns)."""
        self._materialize()
        return super().items()

    def __eq__(self, other) -> bool:
        self._materialize()
        return dict(self) == other

    def __ne__(self, other) -> bool:
        return not self.__eq__(other)

    def copy(self):
        """A plain, fully materialised dict copy."""
        self._materialize()
        return dict(self)

    def __reduce__(self):
        # Pickling (and copy.copy) must see the materialised mapping, not
        # the unpicklable unpack closure.
        return (dict, (self.copy(),))

    __hash__ = None


class _PackedStates(CandidateStates):
    """Packed candidate states: one set-propagation pass, lazy unpacking.

    A *full* sweep fills every signal's planes.  An *incremental* sweep (one
    started from a parent state) fills only the decision variable's influence
    cone and keeps ``None`` plane entries elsewhere; reads outside the cone
    fall back to the parent's per-slot column (``base_sets`` /
    ``base_frame1``).
    """

    def __init__(
        self,
        owner: "PackedImplicationEngine",
        set_planes: List[Optional[List[int]]],
        frame1_planes: PackedPlanes,
        ppi_pair_sets: List[Dict[str, ValueSet]],
        conflict_signals: Dict[int, str],
        fault: Optional[GateDelayFault],
        width: int,
        base_sets: Optional[List[ValueSet]] = None,
        base_frame1: Optional[List[Optional[int]]] = None,
        frame1_slots: Optional[frozenset] = None,
    ) -> None:
        self._owner = owner
        self._compiled = owner.compiled
        self._set_planes = set_planes
        self._frame1_planes = frame1_planes
        self._ppi_pair_sets = ppi_pair_sets
        self._conflict_signals = conflict_signals
        self._fault = fault
        self._width = width
        self._base_sets = base_sets
        self._base_frame1 = base_frame1
        self._frame1_slots = frame1_slots
        self._cache: Dict[int, TwoFrameState] = {}
        self._set_columns: Dict[int, List[ValueSet]] = {}
        self._frame1_columns: Dict[int, List[Optional[int]]] = {}

    def __len__(self) -> int:
        return self._width

    # -- per-slot column extraction (base of incremental child sweeps) ---- #
    def column_sets(self, index: int) -> List[ValueSet]:
        """Per-signal-slot possibility sets of one word slot."""
        cached = self._set_columns.get(index)
        if cached is not None:
            return cached
        bit = 1 << index
        planes = self._set_planes
        base = self._base_sets
        if base is not None:
            # Incremental state: only the influence cone carries planes; the
            # remaining slots are the parent's column, copied wholesale.
            column = list(base)
            for slot, signal_planes in enumerate(planes):
                if signal_planes is None:
                    continue
                mask = 0
                for value_index in range(NUM_PLANES):
                    if signal_planes[value_index] & bit:
                        mask |= 1 << value_index
                column[slot] = mask
        else:
            column = [0] * len(planes)
            for slot, signal_planes in enumerate(planes):
                mask = 0
                for value_index in range(NUM_PLANES):
                    if signal_planes[value_index] & bit:
                        mask |= 1 << value_index
                column[slot] = mask
        self._set_columns[index] = column
        return column

    def column_frame1(self, index: int) -> List[Optional[int]]:
        """Per-signal-slot initial-frame values of one word slot."""
        cached = self._frame1_columns.get(index)
        if cached is not None:
            return cached
        bit = 1 << index
        zero = self._frame1_planes.zero
        one = self._frame1_planes.one
        if self._frame1_slots is None:
            column: List[Optional[int]] = [None] * len(zero)
            slots = range(len(zero))
        else:
            column = list(self._base_frame1)
            slots = self._frame1_slots
        for slot in slots:
            if one[slot] & bit:
                column[slot] = 1
            elif zero[slot] & bit:
                column[slot] = 0
            elif self._frame1_slots is not None:
                column[slot] = None
        self._frame1_columns[index] = column
        return column

    def state(self, index: int) -> TwoFrameState:
        """View word slot ``index`` as a (lazily unpacked) state."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        compiled = self._compiled
        planes = self._set_planes
        zero = self._frame1_planes.zero
        one = self._frame1_planes.one
        base_sets = self._base_sets
        base_frame1 = self._base_frame1
        frame1_slots = self._frame1_slots
        bit = 1 << index

        def unpack_set(slot: int) -> ValueSet:
            signal_planes = planes[slot]
            if signal_planes is None:
                return base_sets[slot]
            mask = 0
            for value_index in range(NUM_PLANES):
                if signal_planes[value_index] & bit:
                    mask |= 1 << value_index
            return mask

        def unpack_frame1(slot: int) -> Optional[int]:
            if frame1_slots is not None and slot not in frame1_slots:
                return base_frame1[slot]
            if one[slot] & bit:
                return 1
            if zero[slot] & bit:
                return 0
            return None

        signal_sets = _LazyColumn(compiled.slot_of, unpack_set)
        frame1 = _LazyColumn(compiled.slot_of, unpack_frame1)

        fault = self._fault
        if fault is None:
            fault_line_set = 0
        elif fault.line.kind is LineKind.STEM:
            fault_line_set = signal_sets[fault.line.signal]
        else:
            fault_line_set = _inject(signal_sets[fault.line.signal], fault.fault_type)

        state = TwoFrameState(
            signal_sets=signal_sets,
            frame1=frame1,
            fault_line_set=fault_line_set,
            ppi_pair_sets=self._ppi_pair_sets[index],
            conflict_signal=self._conflict_signals.get(index),
            packed_handle=(self, index),
        )
        self._cache[index] = state
        return state


class _PackedPairFrames(CandidatePairFrames):
    """Packed pair frames: good/faulty machines in adjacent word slots.

    ``pairs`` unpacks lazily (most consumers read a handful of signals — the
    targets, the state register) and :meth:`potential_planes` computes the
    propagation PODEM's potential-difference scan word-parallel for every
    candidate of the batch in one pass over the gate program.
    """

    def __init__(self, compiled: CompiledCircuit, planes: PackedPlanes, width: int) -> None:
        self._compiled = compiled
        self._planes = planes
        self._width = width
        self._cache: Dict[int, Dict[str, PairValue]] = {}
        self._potential: Optional[List[int]] = None

    def __len__(self) -> int:
        return self._width

    def packed_planes(self) -> PackedPlanes:
        """The underlying planes (read by the packed search kernels)."""
        return self._planes

    def pairs(self, index: int) -> Dict[str, PairValue]:
        """View candidate ``index`` (slots ``2i`` / ``2i + 1``) as lazy pairs."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        zero = self._planes.zero
        one = self._planes.one
        good_bit = 1 << (2 * index)
        faulty_bit = good_bit << 1

        def unpack_pair(slot: int) -> PairValue:
            if one[slot] & good_bit:
                good_value: Optional[int] = 1
            elif zero[slot] & good_bit:
                good_value = 0
            else:
                good_value = None
            if one[slot] & faulty_bit:
                faulty_value: Optional[int] = 1
            elif zero[slot] & faulty_bit:
                faulty_value = 0
            else:
                faulty_value = None
            return (good_value, faulty_value)

        pairs = _LazyColumn(self._compiled.slot_of, unpack_pair)
        self._cache[index] = pairs
        return pairs

    def potential_planes(self) -> List[int]:
        """Per-slot potential-difference column, all candidates at once.

        Bit ``2i`` of entry ``slot`` says the good and the faulty machine of
        candidate ``i`` could still disagree on that signal: provably where
        both machine values are binary and differ, over-approximated through
        the fanin union where either machine is still X — exactly the
        reference scan of :meth:`repro.tdgen.search.ReferenceSearchKernels.
        potential_difference`, evaluated word-parallel and cached for the
        whole batch.
        """
        if self._potential is None:
            compiled = self._compiled
            zero = self._planes.zero
            one = self._planes.one
            full = (1 << self._planes.width) - 1
            good_mask = full // 3  # bits 0, 2, 4, ...  (0b01 repeated)
            potential = [0] * compiled.num_signals
            for slot in compiled.ppi_slots:
                defined = zero[slot] | one[slot]
                defined_good = defined & good_mask
                defined_faulty = (defined >> 1) & good_mask
                both = defined_good & defined_faulty
                differs = both & ((one[slot] ^ (one[slot] >> 1)) & good_mask)
                # Binary/binary pairs differ provably; a binary/X mix could
                # differ; an X/X pair is the same unknown in both machines.
                potential[slot] = differs | (defined_good ^ defined_faulty)
            offsets = compiled.fanin_offsets
            fanin_flat = compiled.fanin_flat
            for gate_index, out in enumerate(compiled.outputs):
                defined = zero[out] | one[out]
                both = (defined & good_mask) & ((defined >> 1) & good_mask)
                differs = both & ((one[out] ^ (one[out] >> 1)) & good_mask)
                acc = 0
                for position in range(offsets[gate_index], offsets[gate_index + 1]):
                    acc |= potential[fanin_flat[position]]
                potential[out] = differs | (acc & ~both & good_mask)
            self._potential = potential
        return self._potential


class _PackedFrames(CandidateFrames):
    """Packed three-valued frames: one candidate per word slot."""

    def __init__(self, compiled: CompiledCircuit, planes: PackedPlanes, width: int) -> None:
        self._compiled = compiled
        self._planes = planes
        self._width = width
        self._cache: Dict[int, SignalValues] = {}

    def __len__(self) -> int:
        return self._width

    def packed_planes(self) -> PackedPlanes:
        """The underlying planes (read by the packed search kernels)."""
        return self._planes

    def frame(self, index: int) -> SignalValues:
        """View word slot ``index`` as a lazily unpacked per-signal dict."""
        cached = self._cache.get(index)
        if cached is not None:
            return cached
        zero = self._planes.zero
        one = self._planes.one
        bit = 1 << index

        def unpack_value(slot: int) -> Optional[int]:
            if one[slot] & bit:
                return 1
            if zero[slot] & bit:
                return 0
            return None

        values = _LazyColumn(self._compiled.slot_of, unpack_value)
        self._cache[index] = values
        return values


class _ChunkedStates(CandidateStates):
    """Concatenation view over per-word chunks of candidate results."""

    def __init__(self, chunks: Sequence[CandidateStates], chunk_size: int) -> None:
        self._chunks = list(chunks)
        self._chunk_size = chunk_size

    def __len__(self) -> int:
        return sum(len(chunk) for chunk in self._chunks)

    def state(self, index: int) -> TwoFrameState:
        """Route the flat index into the owning chunk."""
        return self._chunks[index // self._chunk_size].state(index % self._chunk_size)


@dataclasses.dataclass(frozen=True)
class _InfluenceCone(object):
    """Static influence cone of one decision variable.

    Assigning a PI pair or a PPI initial value can change the initial frame
    only in the variable's combinational fanout (``frame1_gates``); through
    the state-register coupling that can change the pair sets of
    ``affected_dffs``, and the test frame then changes only in the fanout of
    the variable plus those PPIs (``pass2_gates``).  ``*_frontier`` are the
    out-of-cone slots a cone gate reads — the only base columns an
    incremental sweep has to broadcast into planes.
    """

    frame1_gates: Tuple[int, ...]
    frame1_frontier: Tuple[int, ...]
    frame1_slots: frozenset
    affected_dffs: Tuple[int, ...]
    pass2_gates: Tuple[int, ...]
    pass2_frontier: Tuple[int, ...]


class PackedImplicationEngine(ImplicationEngine):
    """Word-parallel implication on the compiled netlist.

    Each word slot carries one independent candidate assignment; one pass
    over the compiled gate program implies the whole batch.  The initial
    (slow clock) frame runs in the two-plane three-valued encoding of
    :mod:`repro.fausim.packed_sim`; the test frame runs in the eight-plane
    *set* encoding of :mod:`repro.algebra.packed_sets` with the targeted
    fault injected per the reference rules (stem output or single branch
    pin).  Results unpack lazily, so unexplored alternatives only ever cost
    their share of the shared pass.

    When the caller provides the base assignment's own implication (the
    parent decision's state), a candidate sweep over a single decision
    variable runs *incrementally*: only the variable's statically computed
    influence cone (:class:`_InfluenceCone`) is re-evaluated, and every
    other signal resolves to the parent's column.
    """

    name = "packed"

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        context: Optional[TDgenContext] = None,
        word_bits: int = WORD_BITS,
    ) -> None:
        super().__init__(circuit, robust=robust, context=context)
        if word_bits < 2:
            raise ValueError("word_bits must be at least 2 (pair frames need 2 slots)")
        self.word_bits = word_bits
        self.compiled: CompiledCircuit = compile_circuit(circuit)
        self._sets = PackedSetSimulator(self.compiled, robust=robust)
        self._logic = PackedLogicSimulator(circuit, word_bits=word_bits)
        compiled = self.compiled
        self._pi_items: List[Tuple[int, str]] = list(
            zip(compiled.pi_slots, circuit.primary_inputs)
        )
        #: Per flip-flop: (PPI slot, PPO data slot, PPI name).
        self._dff_items: List[Tuple[int, int, str]] = [
            (compiled.slot_of[dff.name], compiled.slot_of[dff.fanin[0]], dff.name)
            for dff in circuit.flip_flops
        ]
        self._cones: Dict[str, _InfluenceCone] = {}

    # ------------------------------------------------------------------ #
    def implicate_candidates(
        self, pi_values, ppi_initial, fault, candidates, base=None
    ) -> CandidateStates:
        """One packed set-propagation sweep, one candidate per word slot."""
        if not candidates:
            raise ValueError("need at least one candidate")
        if len(candidates) <= self.word_bits:
            incremental = self._try_incremental(
                pi_values, ppi_initial, fault, candidates, base
            )
            if incremental is not None:
                return incremental
            return self._implicate_chunk(pi_values, ppi_initial, fault, candidates)
        chunks = [
            self._implicate_chunk(
                pi_values, ppi_initial, fault,
                candidates[start : start + self.word_bits],
            )
            for start in range(0, len(candidates), self.word_bits)
        ]
        return _ChunkedStates(chunks, self.word_bits)

    def _try_incremental(
        self, pi_values, ppi_initial, fault, candidates, base
    ) -> Optional["_PackedStates"]:
        """Run the sweep incrementally off ``base`` when it is eligible.

        Eligible means: the base state was produced by *this* engine for the
        *same* fault, it is conflict free, and every override targets one
        single decision variable (the shape the search loops produce).
        Returns ``None`` to fall back to a full sweep.
        """
        if base is None or base.conflict_signal is not None:
            return None
        handle = base.packed_handle
        if handle is None:
            return None
        parent, parent_index = handle
        if parent._owner is not self or parent._fault != fault:
            return None
        variables = {
            (candidate[0], candidate[1])
            for candidate in candidates
            if candidate is not None
        }
        if len(variables) != 1:
            return None
        kind, name = next(iter(variables))
        if name not in self.compiled.slot_of:
            return None
        return self._implicate_incremental(
            pi_values, ppi_initial, fault, candidates,
            parent, parent_index, kind, name,
        )

    # ------------------------------------------------------------------ #
    def _cone(self, name: str) -> _InfluenceCone:
        """The (cached) static influence cone of one decision variable."""
        cached = self._cones.get(name)
        if cached is not None:
            return cached
        compiled = self.compiled
        offsets = compiled.fanin_offsets
        fanin_flat = compiled.fanin_flat
        outputs = compiled.outputs
        var_slot = compiled.slot_of[name]

        def closure(source_slots: set) -> Tuple[List[int], set]:
            """Gate indices (in program order) reachable from the sources."""
            reached = set(source_slots)
            gates: List[int] = []
            for index in range(len(compiled.ops)):
                for position in range(offsets[index], offsets[index + 1]):
                    if fanin_flat[position] in reached:
                        gates.append(index)
                        reached.add(outputs[index])
                        break
            return gates, reached

        def frontier(gates: List[int], reached: set) -> Tuple[int, ...]:
            """Out-of-cone slots the cone gates read."""
            outside = set()
            for index in gates:
                for position in range(offsets[index], offsets[index + 1]):
                    slot = fanin_flat[position]
                    if slot not in reached:
                        outside.add(slot)
            return tuple(sorted(outside))

        frame1_gates, frame1_reached = closure({var_slot})
        affected_dffs = tuple(
            position
            for position, (ppi_slot, data_slot, _) in enumerate(self._dff_items)
            if data_slot in frame1_reached or ppi_slot == var_slot
        )
        pass2_sources = {var_slot}
        pass2_sources.update(self._dff_items[position][0] for position in affected_dffs)
        pass2_gates, pass2_reached = closure(pass2_sources)

        cone = _InfluenceCone(
            frame1_gates=tuple(frame1_gates),
            frame1_frontier=frontier(frame1_gates, frame1_reached),
            frame1_slots=frozenset(frame1_reached),
            affected_dffs=affected_dffs,
            pass2_gates=tuple(pass2_gates),
            pass2_frontier=frontier(pass2_gates, pass2_reached),
        )
        self._cones[name] = cone
        return cone

    # ------------------------------------------------------------------ #
    def _fault_moves(
        self, fault: Optional[GateDelayFault], full: int
    ) -> Tuple[Optional[Tuple[int, Move]], Dict[int, List[Move]], Dict[int, List[Move]]]:
        """Injection bookkeeping of one sweep.

        Returns the source-stem injection (slot + move) if the fault stem is
        a PI/PPI, the gate-stem move table and the branch-position move
        table — the packed mirror of the reference injection rules.
        """
        stem_moves: Dict[int, List[Move]] = {}
        branch_moves: Dict[int, List[Move]] = {}
        source_stem: Optional[Tuple[int, Move]] = None
        if fault is None:
            return source_stem, stem_moves, branch_moves
        compiled = self.compiled
        move: Move = (
            fault.fault_type.activation_value.index,
            fault.fault_type.fault_value.index,
            full,
        )
        slot = compiled.slot_of.get(fault.line.signal)
        if fault.line.kind is LineKind.STEM:
            if slot is not None:
                if slot < len(compiled.pi_slots) + len(compiled.ppi_slots):
                    source_stem = (slot, move)
                else:
                    stem_moves[slot] = [move]
        else:
            sink_slot = compiled.slot_of.get(fault.line.sink)
            sink_index = compiled.gate_index_of.get(sink_slot)
            if (
                sink_index is not None
                and fault.line.pin is not None
                and fault.line.pin >= 0
            ):
                position = compiled.fanin_offsets[sink_index] + fault.line.pin
                if (
                    position < compiled.fanin_offsets[sink_index + 1]
                    and compiled.fanin_flat[position] == slot
                ):
                    branch_moves[position] = [move]
        return source_stem, stem_moves, branch_moves

    # ------------------------------------------------------------------ #
    def _implicate_incremental(
        self, pi_values, ppi_initial, fault, candidates,
        parent: "_PackedStates", parent_index: int, kind: str, name: str,
    ) -> "_PackedStates":
        """Candidate sweep restricted to one variable's influence cone."""
        compiled = self.compiled
        width = len(candidates)
        full = (1 << width) - 1
        cone = self._cone(name)
        base_sets = parent.column_sets(parent_index)
        base_frame1 = parent.column_frame1(parent_index)
        var_slot = compiled.slot_of[name]
        num_signals = compiled.num_signals

        # ---- initial frame: cone-only three-valued pass ----------------- #
        zero = [0] * num_signals
        one = [0] * num_signals
        for slot in cone.frame1_frontier:
            value = base_frame1[slot]
            if value == 1:
                one[slot] = full
            elif value == 0:
                zero[slot] = full
        base_pi_value = pi_values.get(name) if kind == "pi" else ppi_initial.get(name)
        for slot_index, candidate in enumerate(candidates):
            value = base_pi_value if candidate is None else candidate[2]
            initial = (
                value.initial if kind == "pi" and value is not None else value
            )
            if initial == 1:
                one[var_slot] |= 1 << slot_index
            elif initial == 0:
                zero[var_slot] |= 1 << slot_index
        frame1_planes = PackedPlanes(zero=zero, one=one, width=width)
        self._logic.evaluate_planes(frame1_planes, cone.frame1_gates)

        # ---- test frame: cone-only set propagation ---------------------- #
        source_stem, stem_moves, branch_moves = self._fault_moves(fault, full)
        planes: List[Optional[List[int]]] = [None] * num_signals
        for slot in cone.pass2_frontier:
            broadcast = [0] * NUM_PLANES
            remaining = base_sets[slot]
            while remaining:
                low = remaining & -remaining
                broadcast[low.bit_length() - 1] = full
                remaining ^= low
            planes[slot] = broadcast

        if kind == "pi":
            var_planes = [0] * NUM_PLANES
            for slot_index, candidate in enumerate(candidates):
                value = base_pi_value if candidate is None else candidate[2]
                bit = 1 << slot_index
                if value is not None:
                    var_planes[value.index] |= bit
                else:
                    for pi_value in PI_VALUES:
                        var_planes[pi_value.index] |= bit
            planes[var_slot] = var_planes

        # State-register coupling for the affected flip-flops only; the
        # remaining pair sets are inherited from the parent column.
        base_pairs = parent._ppi_pair_sets[parent_index]
        ppi_pair_sets: List[Dict[str, ValueSet]] = [
            dict(base_pairs) for _ in range(width)
        ]
        frame1_slots = cone.frame1_slots
        frame1_zero = frame1_planes.zero
        frame1_one = frame1_planes.one
        for position in cone.affected_dffs:
            ppi_slot, data_slot, dff_name = self._dff_items[position]
            dff_planes = [0] * NUM_PLANES
            in_cone = data_slot in frame1_slots
            base_initial = ppi_initial.get(dff_name)
            for slot_index in range(width):
                bit = 1 << slot_index
                if kind == "ppi" and dff_name == name:
                    candidate = candidates[slot_index]
                    initial = base_initial if candidate is None else candidate[2]
                else:
                    initial = base_initial
                if in_cone:
                    if frame1_one[data_slot] & bit:
                        final: Optional[int] = 1
                    elif frame1_zero[data_slot] & bit:
                        final = 0
                    else:
                        final = None
                else:
                    final = base_frame1[data_slot]
                pair_set = _PAIR_SET_TABLE[(initial, final)]
                ppi_pair_sets[slot_index][dff_name] = pair_set
                remaining = pair_set
                while remaining:
                    low = remaining & -remaining
                    dff_planes[low.bit_length() - 1] |= bit
                    remaining ^= low
            planes[ppi_slot] = dff_planes

        # Source-stem injection: only needed on planes this sweep reloads
        # (the parent's columns already carry the injection elsewhere).
        if source_stem is not None:
            stem_slot, move = source_stem
            reloaded = planes[stem_slot]
            if reloaded is not None:
                apply_move(reloaded, move)

        # Event-driven sweep: only the decision variable and the re-coupled
        # state registers can differ from the parent column; gates whose
        # inputs stay off that wavefront are skipped and resolve to the
        # parent via their ``None`` planes entry.
        changed_slots = [var_slot]
        changed_slots.extend(
            self._dff_items[position][0] for position in cone.affected_dffs
        )
        result = self._sets.propagate(
            planes, width, stem_moves, branch_moves, cone.pass2_gates,
            base_sets=base_sets, changed_slots=changed_slots,
        )
        return _PackedStates(
            owner=self,
            set_planes=result.planes,
            frame1_planes=frame1_planes,
            ppi_pair_sets=ppi_pair_sets,
            conflict_signals=result.conflict_signals,
            fault=fault,
            width=width,
            base_sets=base_sets,
            base_frame1=base_frame1,
            frame1_slots=frame1_slots,
        )

    def _implicate_chunk(self, pi_values, ppi_initial, fault, candidates) -> _PackedStates:
        """Evaluate one word's worth of two-frame candidates."""
        compiled = self.compiled
        width = len(candidates)
        full = (1 << width) - 1

        pi_overrides: Dict[str, List[Tuple[int, object]]] = {}
        ppi_overrides: Dict[str, List[Tuple[int, object]]] = {}
        for slot_index, candidate in enumerate(candidates):
            if candidate is None:
                continue
            kind, name, value = candidate
            target = pi_overrides if kind == "pi" else ppi_overrides
            target.setdefault(name, []).append((slot_index, value))

        # ---- pass 1: three-valued initial frame, all candidates at once --- #
        zero = [0] * compiled.num_signals
        one = [0] * compiled.num_signals
        for slot, name in self._pi_items:
            base = pi_values.get(name)
            overrides = pi_overrides.get(name)
            if overrides is None:
                if base is not None:
                    if base.initial:
                        one[slot] = full
                    else:
                        zero[slot] = full
                continue
            override_mask = 0
            for slot_index, value in overrides:
                bit = 1 << slot_index
                override_mask |= bit
                if value is not None:
                    if value.initial:
                        one[slot] |= bit
                    else:
                        zero[slot] |= bit
            if base is not None:
                rest = full & ~override_mask
                if base.initial:
                    one[slot] |= rest
                else:
                    zero[slot] |= rest
        for ppi_slot, _, name in self._dff_items:
            base = ppi_initial.get(name)
            overrides = ppi_overrides.get(name)
            if overrides is None:
                if base is not None:
                    if base:
                        one[ppi_slot] = full
                    else:
                        zero[ppi_slot] = full
                continue
            override_mask = 0
            for slot_index, value in overrides:
                bit = 1 << slot_index
                override_mask |= bit
                if value is not None:
                    if value:
                        one[ppi_slot] |= bit
                    else:
                        zero[ppi_slot] |= bit
            if base is not None:
                rest = full & ~override_mask
                if base:
                    one[ppi_slot] |= rest
                else:
                    zero[ppi_slot] |= rest
        frame1_planes = PackedPlanes(zero=zero, one=one, width=width)
        self._logic.evaluate_planes(frame1_planes)

        # ---- source set planes ------------------------------------------- #
        set_planes: List[List[int]] = [[0] * NUM_PLANES for _ in range(compiled.num_signals)]
        for slot, name in self._pi_items:
            base = pi_values.get(name)
            overrides = pi_overrides.get(name)
            planes = set_planes[slot]
            if overrides is None:
                if base is not None:
                    planes[base.index] = full
                else:
                    for value in PI_VALUES:
                        planes[value.index] = full
                continue
            override_mask = 0
            for slot_index, value in overrides:
                bit = 1 << slot_index
                override_mask |= bit
                if value is not None:
                    planes[value.index] |= bit
                else:
                    for pi_value in PI_VALUES:
                        planes[pi_value.index] |= bit
            rest = full & ~override_mask
            if rest:
                if base is not None:
                    planes[base.index] |= rest
                else:
                    for pi_value in PI_VALUES:
                        planes[pi_value.index] |= rest

        # State-register coupling: the PPI pair set of every candidate is
        # derived from its own initial value and its own frame-1 PPO value.
        ppi_pair_sets: List[Dict[str, ValueSet]] = [{} for _ in range(width)]
        for ppi_slot, data_slot, name in self._dff_items:
            base = ppi_initial.get(name)
            overrides = dict(
                (slot_index, value) for slot_index, value in ppi_overrides.get(name, ())
            )
            data_zero = frame1_planes.zero[data_slot]
            data_one = frame1_planes.one[data_slot]
            planes = set_planes[ppi_slot]
            for slot_index in range(width):
                initial = overrides.get(slot_index, base) if overrides else base
                bit = 1 << slot_index
                if data_one & bit:
                    final: Optional[int] = 1
                elif data_zero & bit:
                    final = 0
                else:
                    final = None
                pair_set = _PAIR_SET_TABLE[(initial, final)]
                ppi_pair_sets[slot_index][name] = pair_set
                remaining = pair_set
                while remaining:
                    low = remaining & -remaining
                    planes[low.bit_length() - 1] |= bit
                    remaining ^= low

        # ---- fault injection moves ---------------------------------------- #
        source_stem, stem_moves, branch_moves = self._fault_moves(fault, full)
        if source_stem is not None:
            # PI / PPI stem: inject right at the loaded planes.
            stem_slot, move = source_stem
            apply_move(set_planes[stem_slot], move)

        result = self._sets.propagate(set_planes, width, stem_moves, branch_moves)
        return _PackedStates(
            owner=self,
            set_planes=result.planes,
            frame1_planes=frame1_planes,
            ppi_pair_sets=ppi_pair_sets,
            conflict_signals=result.conflict_signals,
            fault=fault,
            width=width,
        )

    # ------------------------------------------------------------------ #
    def pair_frame_candidates(
        self, pi_values, good_state, faulty_state, free_ppi_values, candidates
    ) -> CandidatePairFrames:
        """One packed pass; candidate ``i`` occupies slots ``2i`` / ``2i + 1``."""
        if not candidates:
            raise ValueError("need at least one candidate")
        per_word = self.word_bits // 2
        if len(candidates) > per_word:
            raise ValueError(
                f"{len(candidates)} pair candidates exceed {per_word} per word"
            )
        compiled = self.compiled
        width = 2 * len(candidates)
        full = (1 << width) - 1
        #: Alternating good/faulty slot-selection masks.
        good_mask = full // 3  # bits 0, 2, 4, ...  (0b01 repeated)
        zero = [0] * compiled.num_signals
        one = [0] * compiled.num_signals

        pi_overrides: Dict[str, List[Tuple[int, Optional[int]]]] = {}
        ppi_overrides: Dict[str, List[Tuple[int, Optional[int]]]] = {}
        for slot_index, candidate in enumerate(candidates):
            if candidate is None:
                continue
            name, is_pi, value = candidate
            target = pi_overrides if is_pi else ppi_overrides
            target.setdefault(name, []).append((slot_index, value))

        for slot, name in self._pi_items:
            base = pi_values.get(name)
            overrides = pi_overrides.get(name)
            if overrides is None:
                if base is not None:
                    if base:
                        one[slot] = full
                    else:
                        zero[slot] = full
                continue
            override_mask = 0
            for slot_index, value in overrides:
                bits = 0b11 << (2 * slot_index)
                override_mask |= bits
                if value is not None:
                    if value:
                        one[slot] |= bits
                    else:
                        zero[slot] |= bits
            if base is not None:
                rest = full & ~override_mask
                if base:
                    one[slot] |= rest
                else:
                    zero[slot] |= rest

        for ppi_slot, _, name in self._dff_items:
            free = free_ppi_values.get(name)
            overrides = ppi_overrides.get(name)
            base_good = good_state.get(name)
            base_faulty = faulty_state.get(name)
            if free is not None:
                # A value required from the fast frame: identical in both
                # machines, exactly as the reference pair loop applies it.
                base_good = free
                base_faulty = free
            if overrides is None:
                if base_good == 1:
                    one[ppi_slot] |= good_mask & full
                elif base_good == 0:
                    zero[ppi_slot] |= good_mask & full
                if base_faulty == 1:
                    one[ppi_slot] |= (good_mask << 1) & full
                elif base_faulty == 0:
                    zero[ppi_slot] |= (good_mask << 1) & full
                continue
            override_mask = 0
            for slot_index, value in overrides:
                bits = 0b11 << (2 * slot_index)
                override_mask |= bits
                # The override *replaces* the free-PPI value for this
                # candidate; ``None`` means unassigned, not "fall back".
                effective = value
                if effective is None:
                    # Unassigned free PPI: fall back to the captured states.
                    good_bit = 1 << (2 * slot_index)
                    faulty_bit = good_bit << 1
                    captured_good = good_state.get(name)
                    captured_faulty = faulty_state.get(name)
                    if captured_good == 1:
                        one[ppi_slot] |= good_bit
                    elif captured_good == 0:
                        zero[ppi_slot] |= good_bit
                    if captured_faulty == 1:
                        one[ppi_slot] |= faulty_bit
                    elif captured_faulty == 0:
                        zero[ppi_slot] |= faulty_bit
                elif effective:
                    one[ppi_slot] |= bits
                else:
                    zero[ppi_slot] |= bits
            rest = full & ~override_mask
            if rest:
                if base_good == 1:
                    one[ppi_slot] |= good_mask & rest
                elif base_good == 0:
                    zero[ppi_slot] |= good_mask & rest
                if base_faulty == 1:
                    one[ppi_slot] |= (good_mask << 1) & rest
                elif base_faulty == 0:
                    zero[ppi_slot] |= (good_mask << 1) & rest

        planes = PackedPlanes(zero=zero, one=one, width=width)
        self._logic.evaluate_planes(planes)
        return _PackedPairFrames(compiled, planes, len(candidates))

    # ------------------------------------------------------------------ #
    def frame_candidates(self, pi_values, ppi_values, candidates) -> CandidateFrames:
        """One packed three-valued pass, one candidate per word slot."""
        if not candidates:
            raise ValueError("need at least one candidate")
        if len(candidates) > self.word_bits:
            raise ValueError(
                f"{len(candidates)} frame candidates exceed the word width {self.word_bits}"
            )
        compiled = self.compiled
        width = len(candidates)
        full = (1 << width) - 1
        zero = [0] * compiled.num_signals
        one = [0] * compiled.num_signals

        pi_overrides: Dict[str, List[Tuple[int, Optional[int]]]] = {}
        ppi_overrides: Dict[str, List[Tuple[int, Optional[int]]]] = {}
        for slot_index, candidate in enumerate(candidates):
            if candidate is None:
                continue
            name, is_pi, value = candidate
            target = pi_overrides if is_pi else ppi_overrides
            target.setdefault(name, []).append((slot_index, value))

        for base_values, overrides_map, items in (
            (pi_values, pi_overrides, self._pi_items),
            (ppi_values, ppi_overrides, [(slot, name) for slot, _, name in self._dff_items]),
        ):
            for slot, name in items:
                base = base_values.get(name)
                overrides = overrides_map.get(name)
                if overrides is None:
                    if base == 1:
                        one[slot] = full
                    elif base == 0:
                        zero[slot] = full
                    continue
                override_mask = 0
                for slot_index, value in overrides:
                    bit = 1 << slot_index
                    override_mask |= bit
                    if value == 1:
                        one[slot] |= bit
                    elif value == 0:
                        zero[slot] |= bit
                rest = full & ~override_mask
                if rest:
                    if base == 1:
                        one[slot] |= rest
                    elif base == 0:
                        zero[slot] |= rest

        planes = PackedPlanes(zero=zero, one=one, width=width)
        self._logic.evaluate_planes(planes)
        return _PackedFrames(compiled, planes, width)


class BigintImplicationEngine(PackedImplicationEngine):
    """The packed implication engine on unbounded-width integer planes.

    Identical algorithms, one effectively infinite word: a candidate batch of
    any size (every decision alternative, every justification frame) runs as
    a single sweep over the compiled gate program instead of one sweep per
    64-slot chunk.  Registered under ``"bigint"``, matching the simulation
    backend of the same substrate (:mod:`repro.fausim.bigint_sim`).
    """

    name = "bigint"

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        context: Optional[TDgenContext] = None,
    ) -> None:
        super().__init__(
            circuit, robust=robust, context=context, word_bits=BIGINT_WORD_BITS
        )


class NumpyImplicationEngine(BigintImplicationEngine):
    """The ``numpy``-tier implication engine.

    The three-valued passes (frame justification candidates, SEMILET pair
    frames) run on the levelized vectorised simulator when numpy is
    available; the eight-valued *set*-plane sweeps keep the unbounded-width
    integer substrate of the bigint tier — their cost is bound by the
    occupied plane pairs per gate, not by the word count, so there is no
    per-word loop for vectorisation to remove.  Without numpy the engine is
    exactly the bigint engine (graceful degradation).
    """

    name = "numpy"

    def __init__(
        self,
        circuit: Circuit,
        robust: bool = True,
        context: Optional[TDgenContext] = None,
    ) -> None:
        super().__init__(circuit, robust=robust, context=context)
        if HAVE_NUMPY:
            self._logic = NumpyLogicSimulator(circuit)


# --------------------------------------------------------------------------- #
# registry — same names and same default as the simulation backends
# --------------------------------------------------------------------------- #
#: An engine factory builds an :class:`ImplicationEngine` bound to a circuit.
ImplicationEngineFactory = Callable[..., ImplicationEngine]

_REGISTRY: Dict[str, ImplicationEngineFactory] = {}


def register_implication_engine(
    name: str, factory: ImplicationEngineFactory, overwrite: bool = False
) -> None:
    """Register an implication engine backend under ``name``.

    Args:
        name: registry key; align it with the simulation backend of the same
            substrate so one ``backend=`` choice selects both.
        factory: ``factory(circuit, robust=..., context=...)`` builder.
        overwrite: allow replacing an existing registration.
    """
    if not overwrite and name in _REGISTRY:
        raise ValueError(f"implication engine {name!r} is already registered")
    _REGISTRY[name] = factory


def available_implication_engines() -> Tuple[str, ...]:
    """Names of all registered implication engines, sorted."""
    return tuple(sorted(_REGISTRY))


#: Process-wide force; ``None`` means "follow the requested / default name".
_FORCED_BACKEND: Optional[str] = None


def force_implication_backend(name: "str | None") -> None:
    """Force one implication backend process-wide, decoupled from simulation.

    ``None`` (the initial state) restores the normal coupling where one
    ``--backend`` choice governs fault simulation and search-side
    implication together.  Setting a name makes every *subsequently built*
    engine use that backend — even when a consumer asked for another name —
    which is the ablation escape hatch the search-side benchmark uses to
    time an interpreted search against packed fault simulation.  Always
    reset to ``None`` (``try``/``finally``) after the measurement.
    """
    global _FORCED_BACKEND
    if name is not None and name not in _REGISTRY:
        raise ValueError(
            f"unknown implication engine {name!r}; "
            f"available: {', '.join(available_implication_engines())}"
        )
    _FORCED_BACKEND = name


def resolve_implication_backend(name: "str | None" = None) -> str:
    """Resolve ``None`` to the process-wide simulation default and validate.

    The default deliberately delegates to
    :func:`repro.fausim.backends.default_backend`, so
    ``set_default_backend(...)`` and the CLI ``--backend`` flag govern fault
    simulation and search-side implication together.  An active
    :func:`force_implication_backend` override wins over both the default
    and an explicitly requested name.
    """
    if _FORCED_BACKEND is not None:
        resolved = _FORCED_BACKEND
    elif name is not None:
        resolved = name
    else:
        resolved = _sim_backends.default_backend()
    if resolved not in _REGISTRY:
        raise ValueError(
            f"unknown implication engine {resolved!r}; "
            f"available: {', '.join(available_implication_engines())}"
        )
    return resolved


def create_implication_engine(
    circuit: Circuit,
    backend: "str | None" = None,
    robust: bool = True,
    context: Optional[TDgenContext] = None,
) -> ImplicationEngine:
    """Build the implication engine for ``circuit`` on the selected backend."""
    name = resolve_implication_backend(backend)
    return _REGISTRY[name](circuit, robust=robust, context=context)


register_implication_engine(ReferenceImplicationEngine.name, ReferenceImplicationEngine)
register_implication_engine(PackedImplicationEngine.name, PackedImplicationEngine)
register_implication_engine(BigintImplicationEngine.name, BigintImplicationEngine)
register_implication_engine(NumpyImplicationEngine.name, NumpyImplicationEngine)

"""Repository-level pytest configuration.

Makes the ``src`` layout importable even when the package has not been
installed (e.g. a fresh checkout where ``pip install -e .`` is not possible
because the environment is offline and the ``wheel`` package is missing).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

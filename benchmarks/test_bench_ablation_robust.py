"""Experiment E8 — robust vs non-robust fault model (paper's conclusion).

"Experimental results on benchmark circuits show that the number of
untestable faults due to a strong robust delay fault model is large.  This
number is expected to be significantly decreased by using a non-robust fault
model."

The ablation runs the same campaign twice — once with the robust algebra of
Table 1, once with the relaxed non-robust variant — and compares untestable
counts and coverage.
"""

import pytest

from repro.core.flow import SequentialDelayATPG
from repro.data import load_circuit
from repro.faults.model import enumerate_delay_faults, sample_faults

from benchconfig import bench_max_faults, bench_scale

_CIRCUITS = ["s27", "s386"]


def _run(name, robust):
    circuit = load_circuit(name, scale=bench_scale())
    faults = enumerate_delay_faults(circuit)
    if name != "s27":
        faults = sample_faults(faults, bench_max_faults())
    campaign = SequentialDelayATPG(circuit, robust=robust).run(faults=faults)
    campaign.circuit_name = name
    return campaign


def test_bench_ablation_robust_vs_nonrobust(benchmark):
    results = benchmark.pedantic(
        lambda: [(name, _run(name, True), _run(name, False)) for name in _CIRCUITS],
        rounds=1,
        iterations=1,
    )

    print()
    print("Robust vs non-robust gate delay fault model")
    print(f"{'circuit':>8} {'model':>11} {'tested':>7} {'untstbl':>8} {'aborted':>8} {'coverage':>9}")
    for name, robust_run, relaxed_run in results:
        for label, campaign in (("robust", robust_run), ("non-robust", relaxed_run)):
            print(
                f"{name:>8} {label:>11} {campaign.tested:>7} {campaign.untestable:>8} "
                f"{campaign.aborted:>8} {campaign.fault_coverage:>9.2%}"
            )

    # Shape check: relaxing the model never creates new untestable faults among
    # the targeted ones, and coverage does not drop.
    for name, robust_run, relaxed_run in results:
        assert relaxed_run.untestable_local <= robust_run.untestable_local + 2
        assert relaxed_run.tested >= robust_run.tested - 2

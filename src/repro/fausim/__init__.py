"""FAUSIM — good machine simulation and propagation-phase fault simulation.

The paper splits fault simulation into three phases (section 5); FAUSIM covers
the first two:

1. good machine simulation of all initialisation frames and the fast frame,
2. stuck-at-style fault simulation of the propagation phase, injecting a D at
   every pseudo primary output that holds a non-steady value at the end of
   the fast frame and checking which of them become observable at a primary
   output.

The third phase (delay fault critical path tracing in the fast frame) lives in
:mod:`repro.tdsim`.

Good-machine simulation is available through four interchangeable backends
(see :mod:`repro.fausim.backends`): the compiled bit-parallel ``packed``
evaluator (the process default), the unbounded-width ``bigint`` tier, the
levelized vectorised ``numpy`` tier (optional dependency, degrading to
``bigint``) and the ``reference`` per-gate interpreter (the
differential-testing oracle).  The compiled substrate also hosts the
eight-valued fault-parallel two-frame simulator
(:mod:`repro.fausim.packed_two_frame`) that TDsim's exact injection checks
run on.
"""

from repro.fausim.logic_sim import (
    LogicSimulator,
    simulate_combinational,
    simulate_sequence,
    SequenceResult,
)
from repro.fausim.fault_sim import PropagationFaultSimulator, PPOObservability
from repro.fausim.backends import (
    available_backends,
    create_simulator,
    create_two_frame_simulator,
    default_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)
from repro.fausim.bigint_sim import BigintLogicSimulator, BigintTwoFrameSimulator
from repro.fausim.compile import CompiledCircuit, compile_circuit
from repro.fausim.numpy_sim import (
    HAVE_NUMPY,
    LevelizedProgram,
    NumpyLogicSimulator,
    levelize_program,
)
from repro.fausim.packed_sim import PackedLogicSimulator
from repro.fausim.packed_two_frame import PackedTwoFrameResult, PackedTwoFrameSimulator

__all__ = [
    "LogicSimulator",
    "PackedLogicSimulator",
    "BigintLogicSimulator",
    "BigintTwoFrameSimulator",
    "NumpyLogicSimulator",
    "LevelizedProgram",
    "levelize_program",
    "HAVE_NUMPY",
    "PackedTwoFrameSimulator",
    "PackedTwoFrameResult",
    "CompiledCircuit",
    "compile_circuit",
    "simulate_combinational",
    "simulate_sequence",
    "SequenceResult",
    "PropagationFaultSimulator",
    "PPOObservability",
    "available_backends",
    "create_simulator",
    "create_two_frame_simulator",
    "default_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
]

"""ISCAS'89 .bench parser and writer."""

import pytest

from repro.circuit.bench import BenchParseError, parse_bench, parse_bench_file, write_bench
from repro.circuit.gates import GateType


def test_parse_s27(s27):
    assert s27.name == "s27"
    assert len(s27.flip_flops) == 3
    assert s27.gate("G8").gate_type is GateType.AND
    assert s27.gate("G8").fanin == ["G14", "G6"]
    assert s27.gate("G17").gate_type is GateType.NOT


def test_parse_accepts_aliases_and_comments():
    circuit = parse_bench(
        """
        # a tiny circuit
        INPUT(a)   # the only input
        OUTPUT(y)
        n1 = BUFF(a)
        y = INV(n1)
        """
    )
    assert circuit.gate("n1").gate_type is GateType.BUF
    assert circuit.gate("y").gate_type is GateType.NOT


def test_parse_is_case_insensitive_for_keywords():
    circuit = parse_bench("input(a)\noutput(y)\ny = not(a)\n")
    assert circuit.primary_inputs == ["a"]
    assert circuit.primary_outputs == ["y"]


def test_parse_rejects_unknown_gate():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\ny = FOO(a)\nOUTPUT(y)")


def test_parse_rejects_duplicate_definition():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nINPUT(a)\n")
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nn = NOT(a)\nn = NOT(a)\n")


def test_parse_rejects_undefined_reference():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")


def test_parse_rejects_undriven_output():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nOUTPUT(nowhere)\n")


def test_parse_rejects_gate_without_inputs():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\ny = AND()\nOUTPUT(y)")


def test_parse_rejects_multi_input_dff():
    with pytest.raises(BenchParseError):
        parse_bench("INPUT(a)\nINPUT(b)\nq = DFF(a, b)\nOUTPUT(q)")


def test_parse_rejects_garbage_line():
    with pytest.raises(BenchParseError) as excinfo:
        parse_bench("INPUT(a)\nthis is not bench\n")
    assert "line 2" in str(excinfo.value)


def test_roundtrip_through_writer(s27):
    text = write_bench(s27)
    reparsed = parse_bench(text, name="s27")
    assert reparsed.stats() == s27.stats()
    assert reparsed.primary_inputs == s27.primary_inputs
    assert reparsed.primary_outputs == s27.primary_outputs
    for name, gate in s27.gates.items():
        assert reparsed.gate(name).gate_type is gate.gate_type
        assert reparsed.gate(name).fanin == gate.fanin


def test_writer_uses_buff_alias():
    circuit = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUFF(a)\n")
    assert "BUFF(a)" in write_bench(circuit)


def test_parse_bench_file(tmp_path, s27_text):
    path = tmp_path / "s27.bench"
    path.write_text(s27_text)
    circuit = parse_bench_file(path)
    assert circuit.name == "s27"
    assert len(circuit.flip_flops) == 3


def test_parse_from_iterable_of_lines(s27_text):
    circuit = parse_bench(s27_text.splitlines(), name="s27")
    assert len(circuit.flip_flops) == 3

"""Result containers for the combined flow and for whole campaigns."""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional

from repro.algebra.values import DelayValue
from repro.core.clocking import ClockSchedule
from repro.faults.model import FaultStatus, GateDelayFault


class FaultResultStatus(enum.Enum):
    """Outcome of targeting one fault with the full FOGBUSTER flow."""

    TESTED = "tested"
    UNTESTABLE = "untestable"
    ABORTED = "aborted"


class FlowPhase(enum.Enum):
    """The FOGBUSTER phase in which a fault's processing ended (Figure 4)."""

    LOCAL = "local test generation"
    PROPAGATION = "forward propagation"
    PROPAGATION_JUSTIFICATION = "propagation justification"
    INITIALIZATION = "initialization"
    COMPLETE = "complete"


@dataclasses.dataclass
class TestSequence:
    """A complete test for one gate delay fault.

    The sequence consists of the initialisation vectors (slow clock), the two
    local vectors ``v1`` (slow) and ``v2`` (fast), and the propagation vectors
    (slow clock).  ``pi_pair_values`` / ``ppi_initial_values`` keep the
    algebra-level view used by the fault simulator.
    """

    # Not a pytest test class despite the name.
    __test__ = False

    fault: GateDelayFault
    initialization_vectors: List[Dict[str, int]]
    v1: Dict[str, int]
    v2: Dict[str, int]
    propagation_vectors: List[Dict[str, int]]
    clock_schedule: ClockSchedule
    observation_point: str
    observed_at_po: bool
    pi_pair_values: Dict[str, DelayValue] = dataclasses.field(default_factory=dict)
    ppi_initial_values: Dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def vectors(self) -> List[Dict[str, int]]:
        """All vectors in application order."""
        return list(self.initialization_vectors) + [self.v1, self.v2] + list(
            self.propagation_vectors
        )

    @property
    def pattern_count(self) -> int:
        """Number of applied patterns, initialisation and propagation included."""
        return len(self.vectors)


@dataclasses.dataclass
class FaultResult:
    """Outcome of the FOGBUSTER flow for one targeted fault."""

    fault: GateDelayFault
    status: FaultResultStatus
    phase: FlowPhase
    sequence: Optional[TestSequence] = None
    additionally_detected: List[GateDelayFault] = dataclasses.field(default_factory=list)
    local_backtracks: int = 0
    sequential_backtracks: int = 0
    attempts: int = 1

    @property
    def tested(self) -> bool:
        """True when the flow produced a verified test for the fault."""
        return self.status is FaultResultStatus.TESTED

    def __str__(self) -> str:
        return f"FaultResult({self.fault}, {self.status.value}, phase={self.phase.value})"


@dataclasses.dataclass
class CampaignResult:
    """Aggregated results of a full ATPG campaign on one circuit (Table 3 row)."""

    circuit_name: str
    total_faults: int
    tested: int = 0
    untestable: int = 0
    aborted: int = 0
    pattern_count: int = 0
    cpu_seconds: float = 0.0
    sequences: List[TestSequence] = dataclasses.field(default_factory=list)
    fault_results: List[FaultResult] = dataclasses.field(default_factory=list)
    untestable_local: int = 0
    untestable_sequential: int = 0
    aborted_local: int = 0
    aborted_sequential: int = 0
    targeted: int = 0
    detected_by_simulation: int = 0

    @property
    def fault_coverage(self) -> float:
        """Fraction of the fault universe marked tested."""
        if self.total_faults == 0:
            return 0.0
        return self.tested / self.total_faults

    @property
    def fault_efficiency(self) -> float:
        """Fraction of faults with a definite verdict (tested or untestable)."""
        if self.total_faults == 0:
            return 0.0
        return (self.tested + self.untestable) / self.total_faults

    def as_table3_row(self) -> Dict[str, object]:
        """The columns of the paper's Table 3 for this circuit."""
        return {
            "circuit": self.circuit_name,
            "tested": self.tested,
            "untestable": self.untestable,
            "aborted": self.aborted,
            "patterns": self.pattern_count,
            "time_s": round(self.cpu_seconds, 2),
        }

    def untestable_breakdown(self) -> Dict[str, int]:
        """Split of untestable faults by the phase that proved them untestable.

        The paper (section 6) observes that a large part of the untestable
        faults is only *sequentially* untestable; this breakdown makes that
        observation measurable.
        """
        return {
            "combinationally_untestable": self.untestable_local,
            "sequentially_untestable": self.untestable_sequential,
        }

    def record(self, result: FaultResult, newly_detected: int) -> None:
        """Fold one fault result into the campaign counters."""
        self.fault_results.append(result)
        self.targeted += 1
        if result.status is FaultResultStatus.TESTED:
            if result.sequence is not None:
                self.sequences.append(result.sequence)
                self.pattern_count += result.sequence.pattern_count
            self.detected_by_simulation += max(newly_detected - 1, 0)
        elif result.status is FaultResultStatus.UNTESTABLE:
            if result.phase is FlowPhase.LOCAL:
                self.untestable_local += 1
            else:
                self.untestable_sequential += 1
        else:
            if result.phase is FlowPhase.LOCAL:
                self.aborted_local += 1
            else:
                self.aborted_sequential += 1

    def finalize(self, fault_status_counts: Dict[str, int], cpu_seconds: float) -> None:
        """Fill in the Table 3 counters from the final fault-list status."""
        self.tested = fault_status_counts.get(FaultStatus.TESTED.value, 0)
        self.untestable = fault_status_counts.get(FaultStatus.UNTESTABLE.value, 0)
        self.aborted = fault_status_counts.get(FaultStatus.ABORTED.value, 0) + fault_status_counts.get(
            FaultStatus.UNTARGETED.value, 0
        )
        self.cpu_seconds = cpu_seconds

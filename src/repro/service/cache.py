"""Digest-keyed caches of the ATPG daemon.

Two tiers, both LRU-bounded and thread-safe (the daemon's event loop and its
campaign executor thread touch them concurrently):

:class:`NetlistCache`
    ``netlist digest -> warmed Circuit``.  The digest is the SHA-256 of the
    circuit's canonical ``.bench`` text, so two submissions of the same
    netlist — whatever route they arrived by (registry name, inline bench
    text) and whatever campaign settings they carry — resolve to *one*
    circuit instance whose compiled flat arrays
    (:func:`repro.fausim.compile.compile_circuit`) are already attached.
    Re-submissions therefore skip compilation entirely, and fork-started
    campaign workers inherit the warm arrays through process memory.

:class:`ResultCache`
    ``campaign key -> finished CampaignResult JSON``.  The key combines the
    netlist digest with the journal layer's
    :func:`~repro.orchestrate.journal.campaign_digest` (settings + fault
    universe) and the target cap, so an identical submission is answered
    instantly from cache — no queueing, no workers, no search.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.circuit.bench import netlist_digest
from repro.circuit.netlist import Circuit
from repro.faults.model import GateDelayFault
from repro.fausim.compile import compile_circuit
from repro.orchestrate.journal import campaign_digest

__all__ = ["NetlistCache", "ResultCache", "campaign_cache_key", "netlist_digest"]


def campaign_cache_key(
    net_digest: str,
    circuit_name: str,
    config_payload: Dict[str, object],
    faults: Sequence[GateDelayFault],
    max_target_faults: Optional[int],
) -> str:
    """Cache key of one finished campaign result.

    ``campaign_digest`` already covers the generation settings and the fault
    universe; the netlist digest pins the actual structure (two different
    netlists may enumerate identically named fault sites) and the cap is
    appended because the stored merge is only valid for the same cap.
    """
    digest = campaign_digest(circuit_name, config_payload, faults)
    return f"{net_digest}:{digest}:{max_target_faults}"


class _LruCache:
    """Minimal thread-safe LRU with hit/miss accounting."""

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, object]" = OrderedDict()

    def get(self, key: str):
        """The cached value for ``key``, or None (counts a hit or a miss)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: object) -> None:
        """Insert (or refresh) one entry, evicting the least recently used."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, int]:
        """Entry / hit / miss / eviction counters for the ``/cache`` endpoint."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class NetlistCache:
    """Digest-keyed cache of warmed (compiled) circuits."""

    def __init__(self, max_entries: int = 64) -> None:
        self._cache = _LruCache(max_entries)

    def warm(self, circuit: Circuit) -> Tuple[Circuit, str, bool]:
        """Return the canonical warmed instance of ``circuit``.

        Computes the netlist digest; on a hit the previously warmed instance
        is returned (the submitted duplicate is discarded), on a miss the
        submitted circuit's compiled arrays are built here — once — and the
        instance becomes the canonical one.  Returns
        ``(circuit, digest, was_hit)``.
        """
        digest = netlist_digest(circuit)
        cached = self._cache.get(digest)
        if cached is not None:
            return cached, digest, True
        compile_circuit(circuit)
        self._cache.put(digest, circuit)
        return circuit, digest, False

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the ``/cache`` endpoint."""
        return self._cache.stats()


class ResultCache:
    """Campaign-key-keyed cache of finished CampaignResult JSON payloads."""

    def __init__(self, max_entries: int = 256) -> None:
        self._cache = _LruCache(max_entries)

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The stored campaign JSON for ``key``, or None."""
        return self._cache.get(key)

    def put(self, key: str, campaign_json: Dict[str, object]) -> None:
        """Store one finished campaign's JSON under its cache key."""
        self._cache.put(key, campaign_json)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot for the ``/cache`` endpoint."""
        return self._cache.stats()

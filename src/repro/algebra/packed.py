"""Bit-parallel (packed) evaluation of the eight-valued delay algebra.

The three-valued packed simulator (:mod:`repro.fausim.packed_sim`) encodes a
signal in two bit planes; eight values need three bits of information, but an
arbitrary eight-valued truth table does not decompose into a handful of
bitwise identities the way the {0, 1, X} tables do.  This module therefore
uses the *one-hot multi-plane* encoding: every signal carries eight bit
planes, one per algebra value, and bit ``j`` of plane ``v`` is set exactly
when pattern ``j`` holds the value with index ``v``.  A valid pattern has
exactly one plane bit set; a clear bit in all eight planes encodes an
unassigned pattern slot.

Gate evaluation is *table driven*: the two-input truth tables are taken
verbatim from :mod:`repro.algebra.tables` (:func:`packed_table` is a flat
index-to-index view of :func:`~repro.algebra.tables.table_for_gate`), so the
packed evaluator cannot drift from the paper's Table 1 / Table 2 semantics —
the property suite in ``tests/algebra/test_packed.py`` additionally checks
every input pair of every gate type against
:func:`~repro.algebra.tables.evaluate_delay_gate`.

For a two-input gate the evaluation visits every pair of *non-empty* input
planes::

    out[table[a][b]] |= a_planes[a] & b_planes[b]

which is at most 64 mask operations per machine word of patterns — but in the
fault-parallel workloads that dominate the flow almost every signal holds one
or two distinct values across the word, so the loop usually degenerates to a
handful of operations.  Multi-input gates fold pairwise over the AND/OR/XOR
core and apply the inverter permutation afterwards, exactly mirroring
:func:`~repro.algebra.tables.evaluate_delay_gate`.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Tuple

from repro.algebra.tables import evaluate_delay_gate, not1
from repro.algebra.values import ALL_VALUES, DelayValue
from repro.circuit.gates import GateType

#: Number of bit planes per signal (one per algebra value).
NUM_PLANES = len(ALL_VALUES)

#: ``NOT_PERMUTATION[v]`` is the value index the inverter maps index ``v`` to.
NOT_PERMUTATION: Tuple[int, ...] = tuple(not1(value).index for value in ALL_VALUES)

#: Packed planes of one signal: ``planes[v]`` holds the pattern bits carrying
#: the value with index ``v``.
PackedValue = List[int]


@functools.lru_cache(maxsize=None)
def packed_table(gate_type: GateType, robust: bool = True) -> Tuple[Tuple[int, ...], ...]:
    """Two-input truth table of a gate as an index matrix.

    ``packed_table(g, robust)[a][b]`` is the value *index* of
    ``evaluate_delay_gate(g, (ALL_VALUES[a], ALL_VALUES[b]), robust)``, i.e. a
    flat integer view of the dictionaries in :mod:`repro.algebra.tables`.
    """
    return tuple(
        tuple(
            evaluate_delay_gate(gate_type, (ALL_VALUES[a], ALL_VALUES[b]), robust).index
            for b in range(NUM_PLANES)
        )
        for a in range(NUM_PLANES)
    )


def pack_delay_values(values: Sequence[Optional[DelayValue]]) -> PackedValue:
    """Pack one signal's value across patterns into eight one-hot planes.

    ``None`` entries leave the pattern slot empty in every plane (used for
    slots beyond the active width).
    """
    planes = [0] * NUM_PLANES
    for pattern, value in enumerate(values):
        if value is not None:
            planes[value.index] |= 1 << pattern
    return planes


def unpack_delay_values(planes: Sequence[int], width: int) -> List[Optional[DelayValue]]:
    """Expand packed planes back into one value (or ``None``) per pattern."""
    values: List[Optional[DelayValue]] = [None] * width
    for index, plane in enumerate(planes):
        plane &= (1 << width) - 1
        while plane:
            low = plane & -plane
            values[low.bit_length() - 1] = ALL_VALUES[index]
            plane ^= low
    return values


def packed_not(planes: Sequence[int]) -> PackedValue:
    """Inverter over packed planes: a pure plane permutation (Table 2)."""
    out = [0] * NUM_PLANES
    for index, plane in enumerate(planes):
        if plane:
            out[NOT_PERMUTATION[index]] = plane
    return out


def packed_pair(
    table: Tuple[Tuple[int, ...], ...], a_planes: Sequence[int], b_planes: Sequence[int]
) -> PackedValue:
    """Evaluate one two-input gate over packed planes, given its index table.

    Skips empty planes on both sides, so the cost is proportional to the
    number of *distinct* values each input actually holds across the word.
    """
    out = [0] * NUM_PLANES
    populated_b = [
        (b_index, plane_b) for b_index, plane_b in enumerate(b_planes) if plane_b
    ]
    for a_index, plane_a in enumerate(a_planes):
        if not plane_a:
            continue
        row = table[a_index]
        for b_index, plane_b in populated_b:
            both = plane_a & plane_b
            if both:
                out[row[b_index]] |= both
    return out


_CORE_OF = {
    GateType.AND: (GateType.AND, False),
    GateType.NAND: (GateType.AND, True),
    GateType.OR: (GateType.OR, False),
    GateType.NOR: (GateType.OR, True),
    GateType.XOR: (GateType.XOR, False),
    GateType.XNOR: (GateType.XOR, True),
}


def core_of(gate_type: GateType) -> Tuple[GateType, bool]:
    """Decompose a multi-input gate type into its associative core + inversion.

    Mirrors :func:`~repro.algebra.tables.evaluate_delay_gate`: ``NAND`` is the
    pairwise ``AND`` fold followed by the inverter permutation, and so on.
    """
    try:
        return _CORE_OF[gate_type]
    except KeyError:
        raise ValueError(f"gate type {gate_type} has no two-input core") from None


def evaluate_packed_delay_gate(
    gate_type: GateType, input_planes: Sequence[Sequence[int]], robust: bool = True
) -> PackedValue:
    """Packed counterpart of :func:`~repro.algebra.tables.evaluate_delay_gate`.

    Evaluates one combinational gate for a whole word of patterns at once.
    Every pattern slot that is assigned in all inputs is assigned in the
    output; slots that are empty in some input stay empty.
    """
    if not input_planes:
        raise ValueError(f"{gate_type.value} gate with no inputs")
    if gate_type is GateType.BUF:
        if len(input_planes) != 1:
            raise ValueError("BUF expects exactly one input")
        return list(input_planes[0])
    if gate_type is GateType.NOT:
        if len(input_planes) != 1:
            raise ValueError("NOT expects exactly one input")
        return packed_not(input_planes[0])

    core, invert = core_of(gate_type)
    table = packed_table(core, robust)
    acc: PackedValue = list(input_planes[0])
    for planes in input_planes[1:]:
        acc = packed_pair(table, acc, planes)
    if invert:
        acc = packed_not(acc)
    return acc

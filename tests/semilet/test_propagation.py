"""Forward time processing: propagation of a captured fault effect to a PO."""

import pytest

from repro.fausim.fault_sim import PropagationFaultSimulator
from repro.semilet.propagation import PropagationEngine


def _verify_propagation(circuit, good_state, faulty_state, result):
    """The returned vectors must make some PO differ between the machines."""
    assert result.success
    simulator = PropagationFaultSimulator(circuit, result.vectors)
    # Re-simulate both machines explicitly.
    from repro.fausim.logic_sim import LogicSimulator

    logic = LogicSimulator(circuit)
    good, faulty = dict(good_state), dict(faulty_state)
    observed = False
    for vector in result.vectors:
        good_frame = logic.clock(vector, good)
        faulty_frame = logic.clock(vector, faulty)
        for po in circuit.primary_outputs:
            good_po, faulty_po = good_frame.values[po], faulty_frame.values[po]
            if good_po is not None and faulty_po is not None and good_po != faulty_po:
                observed = True
        good, faulty = good_frame.next_state, faulty_frame.next_state
    assert observed


def test_immediate_observation(resettable_ff):
    engine = PropagationEngine(resettable_ff)
    result = engine.propagate({"q": 1}, {"q": 0})
    _verify_propagation(resettable_ff, {"q": 1}, {"q": 0}, result)
    assert result.observation_frame == 0
    assert result.observed_po == "out"


def test_propagation_on_s27(s27):
    engine = PropagationEngine(s27)
    # A difference in G6 feeds G8 = AND(G14, G6); with G0 = 0 it reaches the
    # next-state logic and eventually the single PO G17 = NOT(G11).
    good = {"G5": 0, "G6": 1, "G7": 0}
    faulty = {"G5": 0, "G6": 0, "G7": 0}
    result = engine.propagate(good, faulty)
    _verify_propagation(s27, good, faulty, result)


def test_propagation_with_unknown_state_bits(s27):
    engine = PropagationEngine(s27)
    # Only the faulty bit is known; the rest of the state is the unjustifiable
    # don't care the paper describes (unknown but equal in both machines).
    good = {"G6": 1}
    faulty = {"G6": 0}
    result = engine.propagate(good, faulty)
    if result.success:
        _verify_propagation(s27, good, faulty, result)
    else:
        assert not result.vectors


def test_propagation_failure_when_difference_is_masked(resettable_ff):
    engine = PropagationEngine(resettable_ff, max_frames=2)
    # good == faulty: there is nothing to propagate.
    result = engine.propagate({"q": 1}, {"q": 1})
    assert not result.success


def test_required_first_frame_ppis_are_reported(s27):
    engine = PropagationEngine(s27)
    good = {"G6": 1}
    faulty = {"G6": 0}
    result = engine.propagate(good, faulty, assignable_ppis=["G5", "G7"])
    if result.success and result.required_first_frame_ppis:
        # Any required value must be on an assignable PPI and binary.
        for ppi, value in result.required_first_frame_ppis.items():
            assert ppi in ("G5", "G7")
            assert value in (0, 1)


def test_propagation_respects_frame_limit(s27):
    engine = PropagationEngine(s27, max_frames=1)
    # With a single frame the difference in G7 cannot reach the PO (G7 only
    # feeds G12 which is two state hops away from G11/G17).
    result = engine.propagate({"G7": 1}, {"G7": 0})
    assert not result.success


def test_vectors_only_mention_primary_inputs(s27):
    engine = PropagationEngine(s27)
    result = engine.propagate({"G5": 0, "G6": 1, "G7": 0}, {"G5": 0, "G6": 0, "G7": 0})
    assert result.success
    for vector in result.vectors:
        assert set(vector) <= set(s27.primary_inputs)

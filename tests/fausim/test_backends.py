"""Backend registry and circuit compiler."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.gates import GateType
from repro.fausim import (
    LogicSimulator,
    PackedLogicSimulator,
    available_backends,
    compile_circuit,
    create_simulator,
    default_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
)


def test_builtin_backends_registered():
    assert "reference" in available_backends()
    assert "packed" in available_backends()


def test_create_simulator_types(s27):
    assert isinstance(create_simulator(s27, "reference"), LogicSimulator)
    assert isinstance(create_simulator(s27, "packed"), PackedLogicSimulator)


def test_default_backend_is_packed(s27):
    """The campaign default is the compiled bit-parallel backend."""
    assert default_backend() == "packed"
    assert resolve_backend(None) == "packed"
    assert isinstance(create_simulator(s27), PackedLogicSimulator)


def test_unknown_backend_rejected(s27):
    with pytest.raises(ValueError, match="unknown simulation backend"):
        create_simulator(s27, "warp-drive")
    with pytest.raises(ValueError):
        resolve_backend("warp-drive")


def test_set_default_backend_round_trip(s27):
    previous = set_default_backend("reference")
    try:
        assert previous == "packed"
        assert isinstance(create_simulator(s27), LogicSimulator)
    finally:
        set_default_backend(previous)
    assert default_backend() == "packed"


def test_register_backend_conflicts():
    with pytest.raises(ValueError, match="already registered"):
        register_backend("reference", LogicSimulator)
    # Overwriting is explicit; restore the original right away.
    register_backend("reference", LogicSimulator, overwrite=True)


def test_compile_layout(s27):
    compiled = compile_circuit(s27)
    # PIs first, then PPIs, then gates in evaluation order.
    assert [compiled.signal_names[slot] for slot in compiled.pi_slots] == s27.primary_inputs
    assert [
        compiled.signal_names[slot] for slot in compiled.ppi_slots
    ] == s27.pseudo_primary_inputs
    assert compiled.num_signals == len(s27.primary_inputs) + len(
        s27.pseudo_primary_inputs
    ) + len(s27.combinational_gates)
    assert compiled.num_gates == len(s27.combinational_gates)
    assert len(compiled.fanin_offsets) == compiled.num_gates + 1
    # Every fanin slot is defined before it is consumed.
    produced = set(compiled.pi_slots) | set(compiled.ppi_slots)
    for index in range(compiled.num_gates):
        for position in range(
            compiled.fanin_offsets[index], compiled.fanin_offsets[index + 1]
        ):
            assert compiled.fanin_flat[position] in produced
        produced.add(compiled.outputs[index])


def test_compile_cache_reused_and_invalidated():
    builder = CircuitBuilder("cache")
    builder.inputs(["a", "b"])
    builder.and_("y", ["a", "b"])
    builder.output("y")
    circuit = builder.build()

    first = compile_circuit(circuit)
    assert compile_circuit(circuit) is first

    circuit.add_gate("z", GateType.OR, ["a", "y"])
    second = compile_circuit(circuit)
    assert second is not first
    assert "z" in second.slot_of


def test_packed_word_bits_validation(s27):
    with pytest.raises(ValueError):
        PackedLogicSimulator(s27, word_bits=0)

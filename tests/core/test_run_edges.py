"""Edge-path tests for ``SequentialDelayATPG.run`` and the per-fault step.

Covers the campaign driver paths that the end-to-end s27 tests do not pin
down: the ``max_target_faults`` cap, the ``time_limit_s`` budget (including
the regression that the budget must bound a *single* slow fault, not only be
checked between faults), explicit ``faults=`` subsets, and the
``target_fault`` / ``credit_fault_result`` split the orchestration layer
builds on.
"""

import time

import pytest

from repro.core.flow import SequentialDelayATPG, credit_fault_result
from repro.core.results import FaultResultStatus
from repro.data import load_circuit
from repro.faults.model import FaultList, FaultStatus, enumerate_delay_faults


@pytest.fixture(scope="module")
def s838_small():
    """A mid-size surrogate with faults that search for many backtracks."""
    return load_circuit("s838", scale=0.4)


# --------------------------------------------------------------------------- #
# time_limit_s
# --------------------------------------------------------------------------- #
def test_time_limit_bounds_a_single_slow_fault(s838_small):
    """Regression: the budget is passed into the searches as a deadline.

    With a huge backtrack limit the very first fault of this circuit runs for
    tens of seconds before aborting.  ``run(time_limit_s=...)`` used to check
    the budget only *between* faults, so that one fault blew the budget
    unbounded; with the deadline threaded into TDgen/SEMILET the campaign must
    return promptly and report the in-flight fault aborted.
    """
    atpg = SequentialDelayATPG(
        s838_small, local_backtrack_limit=100000, sequential_backtrack_limit=100000
    )
    start = time.perf_counter()
    campaign = atpg.run(time_limit_s=0.3)
    elapsed = time.perf_counter() - start
    assert elapsed < 5.0, f"time_limit_s did not bound the in-flight fault ({elapsed:.1f}s)"
    assert campaign.targeted >= 1
    assert campaign.fault_results[0].status is FaultResultStatus.ABORTED


def test_expired_deadline_aborts_immediately(s27):
    atpg = SequentialDelayATPG(s27)
    fault = enumerate_delay_faults(s27)[0]
    result = atpg.generate_for_fault(fault, deadline=time.perf_counter() - 1.0)
    assert result.status is FaultResultStatus.ABORTED


def test_zero_time_limit_targets_at_most_one_fault(s27):
    campaign = SequentialDelayATPG(s27).run(time_limit_s=0.0)
    assert campaign.targeted <= 1
    # Every fault still gets a Table 3 verdict (untargeted ones count aborted).
    assert (
        campaign.tested + campaign.untestable + campaign.aborted == campaign.total_faults
    )


# --------------------------------------------------------------------------- #
# max_target_faults
# --------------------------------------------------------------------------- #
def test_max_target_faults_counts_targets_not_detections(s27):
    campaign = SequentialDelayATPG(s27).run(max_target_faults=5)
    assert campaign.targeted == 5
    assert len(campaign.fault_results) == 5
    # Fault simulation may well mark more than five faults tested.
    assert campaign.tested >= sum(
        1 for r in campaign.fault_results if r.status is FaultResultStatus.TESTED
    )
    assert (
        campaign.tested + campaign.untestable + campaign.aborted == campaign.total_faults
    )


def test_max_target_faults_zero_targets_nothing(s27):
    campaign = SequentialDelayATPG(s27).run(max_target_faults=0)
    assert campaign.targeted == 0
    assert campaign.tested == 0
    assert campaign.aborted == campaign.total_faults


# --------------------------------------------------------------------------- #
# explicit fault subsets
# --------------------------------------------------------------------------- #
def test_explicit_subset_restricts_universe_and_detections(s27):
    faults = enumerate_delay_faults(s27)
    subset = faults[:10]
    campaign = SequentialDelayATPG(s27).run(faults=subset)
    assert campaign.total_faults == 10
    assert campaign.tested + campaign.untestable + campaign.aborted == 10
    subset_set = set(subset)
    for result in campaign.fault_results:
        assert result.fault in subset_set
        # credit_fault_result filters detections down to the subset universe.
        for detection in result.additionally_detected:
            assert detection in subset_set


def test_explicit_subset_combined_with_cap(s27):
    faults = enumerate_delay_faults(s27)
    campaign = SequentialDelayATPG(s27).run(faults=faults[:10], max_target_faults=2)
    assert campaign.targeted <= 2
    assert campaign.total_faults == 10


# --------------------------------------------------------------------------- #
# target_fault / credit_fault_result (the orchestration building blocks)
# --------------------------------------------------------------------------- #
def test_target_fault_returns_raw_detections(s27):
    atpg = SequentialDelayATPG(s27)
    faults = enumerate_delay_faults(s27)
    tested = next(
        result
        for result in (atpg.target_fault(fault) for fault in faults)
        if result.status is FaultResultStatus.TESTED
    )
    # The raw detection list includes the targeted fault itself.
    assert tested.fault in tested.additionally_detected


def test_credit_fault_result_matches_serial_bookkeeping(s27):
    atpg = SequentialDelayATPG(s27)
    faults = enumerate_delay_faults(s27)
    fault_list = FaultList(faults)
    result = atpg.target_fault(faults[0])
    newly = credit_fault_result(result, fault_list)
    if result.status is FaultResultStatus.TESTED:
        assert newly == len(set(result.additionally_detected) | {result.fault})
        assert fault_list.status(faults[0]) is FaultStatus.TESTED
        # Crediting the same result again marks nothing new.
        assert credit_fault_result(result, fault_list) == 0
    else:
        assert newly == 0

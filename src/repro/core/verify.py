"""Independent functional verification and fault-parallel grading of tests.

The ATPG engine and the fault simulator share the eight-valued algebra, so a
bug there could produce consistently wrong but self-agreeing results.  This
module provides an *independent* check based only on plain three-valued logic
simulation and the gross delay fault interpretation: the faulted line misses
the fast clock entirely, i.e. at the fast sample time it still shows the value
it had in the previous (slow) frame.

A robust gate delay fault test must detect every fault size above the slack,
in particular the gross one, so every sequence produced by the flow has to
pass this check; the test-suite relies on it heavily.

Two entry points share the machinery:

:func:`verify_test_sequence`
    Replay one sequence against its own targeted fault and return the full
    :class:`VerificationReport` (detection point plus the good/faulty primary
    output traces).

:func:`grade_test_sequence`
    Grade one sequence against *many* faults at once.  With the packed
    backend the good machine occupies pattern slot 0 and one faulty machine
    occupies each remaining slot of the word, so a whole fault list is graded
    in ``ceil(faults / 63)`` bit-parallel sweeps instead of one full
    interpreter replay per fault — this is what the random baseline and the
    grading benchmarks run.  With the reference backend the faults are
    replayed one at a time; the two paths are differentially tested to be
    identical.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuit.gates import evaluate_gate
from repro.circuit.levelize import combinational_order
from repro.circuit.netlist import Circuit, LineKind
from repro.core.results import TestSequence
from repro.faults.model import GateDelayFault
from repro.fausim.backends import create_simulator
from repro.fausim.logic_sim import SignalValues
from repro.fausim.packed_sim import PackedLogicSimulator


@dataclasses.dataclass
class VerificationReport:
    """Outcome of replaying a test sequence against the gross delay fault."""

    detected: bool
    detection_frame: Optional[int] = None
    primary_output: Optional[str] = None
    good_trace: List[SignalValues] = dataclasses.field(default_factory=list)
    faulty_trace: List[SignalValues] = dataclasses.field(default_factory=list)

    def __bool__(self) -> bool:
        return self.detected


@dataclasses.dataclass
class FaultGrade:
    """Gross-delay grading verdict for one fault under one test sequence."""

    fault: GateDelayFault
    detected: bool
    detection_frame: Optional[int] = None
    primary_output: Optional[str] = None

    def __bool__(self) -> bool:
        return self.detected


def _faulty_fast_frame(
    circuit: Circuit,
    order: List[str],
    pi_vector: SignalValues,
    state: SignalValues,
    fault: GateDelayFault,
    stale_value: Optional[int],
) -> SignalValues:
    """Evaluate the fast frame with the faulted line frozen at its stale value."""
    values: SignalValues = {}
    for pi in circuit.primary_inputs:
        values[pi] = pi_vector.get(pi)
    for ppi in circuit.pseudo_primary_inputs:
        values[ppi] = state.get(ppi)

    stem_fault = fault.line.kind is LineKind.STEM
    if stem_fault and fault.line.signal in values:
        values[fault.line.signal] = stale_value

    for name in order:
        gate = circuit.gate(name)
        inputs = []
        for pin, source in enumerate(gate.fanin):
            value = values[source]
            if (
                not stem_fault
                and fault.line.sink == name
                and fault.line.pin == pin
                and source == fault.line.signal
            ):
                value = stale_value
            inputs.append(value)
        output = evaluate_gate(gate.gate_type, inputs)
        if stem_fault and name == fault.line.signal:
            output = stale_value
        values[name] = output
    return values


# --------------------------------------------------------------------------- #
# reference (scalar) grading
# --------------------------------------------------------------------------- #
def _grade_scalar(
    circuit: Circuit,
    simulator,
    order: List[str],
    sequence: TestSequence,
    fault: GateDelayFault,
    collect_traces: bool,
) -> Tuple[FaultGrade, List[SignalValues], List[SignalValues]]:
    """Replay the sequence against one fault with the scalar simulator."""
    fast_index = sequence.clock_schedule.fast_frame_index
    vectors = sequence.vectors

    good_state: SignalValues = {}
    faulty_state: SignalValues = {}
    good_trace: List[SignalValues] = []
    faulty_trace: List[SignalValues] = []
    previous_good_frame: SignalValues = {}

    for index, vector in enumerate(vectors):
        good_frame = simulator.clock(vector, good_state)
        if index < fast_index:
            # Slow clock, fault-free: both machines are identical.
            faulty_values = dict(good_frame.values)
            faulty_next = dict(good_frame.next_state)
        elif index == fast_index:
            stale = previous_good_frame.get(fault.line.signal)
            faulty_values = _faulty_fast_frame(
                circuit, order, vector, faulty_state, fault, stale
            )
            faulty_next = {
                dff.name: faulty_values[dff.fanin[0]] for dff in circuit.flip_flops
            }
        else:
            faulty_frame = simulator.clock(vector, faulty_state)
            faulty_values = faulty_frame.values
            faulty_next = faulty_frame.next_state

        if collect_traces:
            good_trace.append(simulator.outputs(good_frame.values))
            faulty_trace.append({po: faulty_values[po] for po in circuit.primary_outputs})

        if index >= fast_index:
            for po in circuit.primary_outputs:
                good_po = good_frame.values[po]
                faulty_po = faulty_values[po]
                if good_po is not None and faulty_po is not None and good_po != faulty_po:
                    grade = FaultGrade(
                        fault=fault,
                        detected=True,
                        detection_frame=index,
                        primary_output=po,
                    )
                    return grade, good_trace, faulty_trace

        previous_good_frame = good_frame.values
        good_state = good_frame.next_state
        faulty_state = faulty_next

    return FaultGrade(fault=fault, detected=False), good_trace, faulty_trace


# --------------------------------------------------------------------------- #
# packed (fault-parallel) grading
# --------------------------------------------------------------------------- #
def _merge_force(
    forces: Dict[int, Tuple[int, int, int]], key: int, bit: int, stale: Optional[int]
) -> None:
    """Accumulate one pattern bit's freeze into a ``(clear, z, o)`` triple."""
    clear, set_zero, set_one = forces.get(key, (0, 0, 0))
    clear |= bit
    if stale == 0:
        set_zero |= bit
    elif stale == 1:
        set_one |= bit
    forces[key] = (clear, set_zero, set_one)


def _build_forces(
    simulator: PackedLogicSimulator,
    faults: Sequence[GateDelayFault],
    stale_values: Dict[str, Optional[int]],
) -> Tuple[
    List[Tuple[int, int, int, int]],
    Dict[int, Tuple[int, int, int]],
    Dict[int, Tuple[int, int, int]],
]:
    """Freeze each slot's fault line at its stale value (slot ``j`` = bit ``j+1``)."""
    compiled = simulator.compiled
    n_sources = len(compiled.pi_slots) + len(compiled.ppi_slots)
    gate_index_of = compiled.gate_index_of

    source_forces: Dict[int, Tuple[int, int, int]] = {}
    gate_forces: Dict[int, Tuple[int, int, int]] = {}
    branch_forces: Dict[int, Tuple[int, int, int]] = {}
    for position, fault in enumerate(faults):
        bit = 1 << (position + 1)
        stale = stale_values.get(fault.line.signal)
        slot = compiled.slot_of.get(fault.line.signal)
        if fault.line.kind is LineKind.STEM:
            if slot is None:
                continue
            if slot < n_sources:
                _merge_force(source_forces, slot, bit, stale)
            else:
                _merge_force(gate_forces, slot, bit, stale)
        else:
            sink_slot = compiled.slot_of.get(fault.line.sink)
            sink_index = gate_index_of.get(sink_slot)
            if sink_index is None or fault.line.pin is None:
                continue  # sink is not a compiled gate (e.g. a DFF data pin)
            flat = compiled.fanin_offsets[sink_index] + fault.line.pin
            if (
                flat >= compiled.fanin_offsets[sink_index + 1]
                or compiled.fanin_flat[flat] != slot
            ):
                continue  # pin does not exist / does not read the fault stem
            _merge_force(branch_forces, flat, bit, stale)
    sources = [
        (slot, clear, set_zero, set_one)
        for slot, (clear, set_zero, set_one) in source_forces.items()
    ]
    return sources, gate_forces, branch_forces


def _grade_packed(
    circuit: Circuit,
    simulator: PackedLogicSimulator,
    sequence: TestSequence,
    faults: Sequence[GateDelayFault],
    collect_traces: bool = False,
) -> Tuple[List[FaultGrade], List[SignalValues], List[SignalValues]]:
    """Grade one word of faults in lockstep: good machine in slot 0.

    All machines are identical until the fast frame, so every slot shares the
    broadcast primary inputs and the carried state planes; the fast frame
    freezes slot ``j + 1``'s fault line at its stale value via
    :meth:`~repro.fausim.packed_sim.PackedLogicSimulator.evaluate_planes_forced`,
    and the later frames evolve each machine from its own latched state.
    """
    compiled = simulator.compiled
    fast_index = sequence.clock_schedule.fast_frame_index
    vectors = sequence.vectors
    count = len(faults)
    width = count + 1
    stale_signals = {fault.line.signal for fault in faults}

    ppis = circuit.pseudo_primary_inputs
    state_zero = [0] * len(ppis)
    state_one = [0] * len(ppis)
    grades: Dict[int, FaultGrade] = {}
    undetected = ((1 << count) - 1) << 1
    good_trace: List[SignalValues] = []
    faulty_trace: List[SignalValues] = []
    stale_values: Dict[str, Optional[int]] = {}

    for index, vector in enumerate(vectors):
        planes = simulator.load_broadcast_planes(vector, state_zero, state_one, width)
        zero = planes.zero
        one = planes.one

        if index == fast_index:
            sources, gate_forces, branch_forces = _build_forces(
                simulator, faults, stale_values
            )
            simulator.evaluate_planes_forced(planes, sources, gate_forces, branch_forces)
        else:
            simulator.evaluate_planes(planes)

        if collect_traces:
            good_values: SignalValues = {}
            faulty_values: SignalValues = {}
            for po in circuit.primary_outputs:
                slot = compiled.slot_of[po]
                good_values[po] = planes.value(slot, 0)
                faulty_values[po] = planes.value(slot, 1) if count else planes.value(slot, 0)
            good_trace.append(good_values)
            faulty_trace.append(faulty_values)

        detected_everything = False
        if index >= fast_index and undetected:
            for po in circuit.primary_outputs:
                slot = compiled.slot_of[po]
                # A provable difference needs a binary faulty value on the
                # opposite plane of the binary good value (slot 0).
                if one[slot] & 1:
                    diff = zero[slot]
                elif zero[slot] & 1:
                    diff = one[slot]
                else:
                    continue
                fresh = diff & undetected
                if not fresh:
                    continue
                for position in range(count):
                    if fresh & (1 << (position + 1)):
                        grades[position] = FaultGrade(
                            fault=faults[position],
                            detected=True,
                            detection_frame=index,
                            primary_output=po,
                        )
                undetected &= ~fresh
            detected_everything = not undetected
        if detected_everything:
            # Every fault (and the single-fault verification) stops at its
            # first detection, exactly like the scalar replay.
            break

        if index == fast_index - 1:
            # The stale value of a fault line is its good-machine value in the
            # frame right before the fast one.
            stale_values = {
                name: planes.value(compiled.slot_of[name], 0)
                for name in stale_signals
                if name in compiled.slot_of
            }
        state_zero, state_one = simulator.next_state_planes(planes)

    results = [
        grades.get(position, FaultGrade(fault=faults[position], detected=False))
        for position in range(count)
    ]
    return results, good_trace, faulty_trace


# --------------------------------------------------------------------------- #
# public API
# --------------------------------------------------------------------------- #
def grade_test_sequence(
    circuit: Circuit,
    sequence: TestSequence,
    faults: Sequence[GateDelayFault],
    backend: Optional[str] = None,
) -> List[FaultGrade]:
    """Grade a test sequence against many gross delay faults at once.

    The targeted fault stored in ``sequence.fault`` is ignored; every fault
    in ``faults`` is graded independently under the sequence's vectors and
    clock schedule.  Results come back in input order and are bit-exact
    across backends (the differential suite in ``tests/core`` enforces this).

    Args:
        circuit: circuit under test.
        sequence: the applied vectors with their slow/fast clock schedule.
        faults: the fault universe to grade.
        backend: good-machine simulation backend (see
            :mod:`repro.fausim.backends`); the packed backend grades one
            faulty machine per word slot, the reference backend replays one
            fault at a time.
    """
    simulator = create_simulator(circuit, backend)
    if isinstance(simulator, PackedLogicSimulator):
        grades: List[FaultGrade] = []
        chunk_width = max(1, simulator.word_bits - 1)
        for start in range(0, len(faults), chunk_width):
            chunk = list(faults[start : start + chunk_width])
            grades.extend(_grade_packed(circuit, simulator, sequence, chunk)[0])
        return grades
    order = combinational_order(circuit)
    return [
        _grade_scalar(circuit, simulator, order, sequence, fault, collect_traces=False)[0]
        for fault in faults
    ]


def verify_test_sequence(
    circuit: Circuit,
    sequence: TestSequence,
    backend: Optional[str] = None,
) -> VerificationReport:
    """Replay a test sequence and check that the gross delay fault is caught.

    Both machines start in the all-unknown state, the initialisation and
    propagation frames use fault-free (slow clock) behaviour, and the fast
    frame of the faulty machine freezes the faulted line at its value from the
    previous frame.  Detection requires a primary output where the good value
    is binary and provably differs from the faulty value.

    ``backend`` selects the simulator (see :mod:`repro.fausim.backends`): the
    packed backend runs good and faulty machine side by side in two pattern
    slots of one bit-parallel replay, the reference backend keeps the
    independent scalar second opinion.
    """
    simulator = create_simulator(circuit, backend)
    if isinstance(simulator, PackedLogicSimulator):
        grades, good_trace, faulty_trace = _grade_packed(
            circuit, simulator, sequence, [sequence.fault], collect_traces=True
        )
        grade = grades[0]
    else:
        order = combinational_order(circuit)
        grade, good_trace, faulty_trace = _grade_scalar(
            circuit, simulator, order, sequence, sequence.fault, collect_traces=True
        )
    return VerificationReport(
        detected=grade.detected,
        detection_frame=grade.detection_frame,
        primary_output=grade.primary_output,
        good_trace=good_trace,
        faulty_trace=faulty_trace,
    )

"""End-to-end CLI coverage of the store surface.

``python -m repro campaign --store/--incremental-from`` and the ``store``
subcommand (``ingest``/``query``/``report``) are exercised in-process the
way a user would run them, plus the cross-resume safety rails: a robust
store or journal can never seed a non-robust re-run and vice versa.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.circuit.bench import write_bench
from repro.circuit.gates import GateType
from repro.data import load_circuit


def run_cli(capsys, *argv):
    """Run the CLI in-process and return (exit_code, stdout, stderr)."""
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _edited_bench(tmp_path):
    """s27 with an ECO observer gate, written as ``s27.bench``.

    The file stem names the parsed circuit, so the store lookup matches the
    stored base campaign by circuit name.
    """
    circuit = load_circuit("s27")
    circuit.add_gate("eco_obs", GateType.AND, list(circuit.primary_inputs[:2]))
    circuit.add_output("eco_obs")
    path = tmp_path / "s27.bench"
    path.write_text(write_bench(circuit), encoding="utf-8")
    return str(path)


def test_campaign_store_then_incremental(tmp_path, capsys):
    """Run + store, edit the netlist, resume incrementally from the store."""
    store = str(tmp_path / "s.sqlite")
    code, out, _ = run_cli(capsys, "campaign", "--circuits", "s27", "--store", store)
    assert code == 0
    assert "stored s27 as campaign #1" in out

    code, out, _ = run_cli(
        capsys, "campaign", "--circuits", _edited_bench(tmp_path),
        "--incremental-from", store, "--store", store,
    )
    assert code == 0
    assert "Incremental re-run — s27: base campaign #1" in out
    assert "stored s27 as campaign #2" in out

    # The chained store now serves the *edited* netlist as a base: an
    # unchanged re-run reuses everything.
    code, out, _ = run_cli(
        capsys, "campaign", "--circuits", _edited_bench(tmp_path),
        "--incremental-from", store,
    )
    assert code == 0
    assert "base campaign #2" in out
    assert "retargeted 0" in out


def test_incremental_matches_direct_run_output(tmp_path, capsys):
    """The printed Table 3 row is identical to a from-scratch run."""
    store = str(tmp_path / "s.sqlite")
    assert run_cli(capsys, "campaign", "--circuits", "s27", "--store", store)[0] == 0
    bench = _edited_bench(tmp_path)

    code, direct, _ = run_cli(capsys, "campaign", "--circuits", bench)
    assert code == 0
    code, incremental, _ = run_cli(
        capsys, "campaign", "--circuits", bench, "--incremental-from", store
    )
    assert code == 0

    def table_row(text):
        rows = [line for line in text.splitlines() if line.lstrip().startswith("s27")]
        return [row.split()[:-1] if "." in row else row.split() for row in rows]

    assert table_row(incremental) == table_row(direct)


@pytest.mark.parametrize(
    "extra",
    [
        ("--jobs", "2"),
        ("--rpg-prefix",),
        ("--journal", "j.jsonl"),
        ("--resume", "j.jsonl"),
        ("--time-limit", "1"),
    ],
)
def test_incremental_conflicts_rejected(tmp_path, capsys, extra):
    """--incremental-from refuses every loop-reshaping flag."""
    code, _, err = run_cli(
        capsys, "campaign", "--circuits", "s27",
        "--incremental-from", str(tmp_path / "s.sqlite"), *extra,
    )
    assert code == 2
    assert "--incremental-from is not supported with" in err


def test_incremental_rejects_cross_config_store(tmp_path, capsys):
    """A robust store never seeds a non-robust incremental run."""
    store = str(tmp_path / "s.sqlite")
    assert run_cli(capsys, "campaign", "--circuits", "s27", "--store", store)[0] == 0
    code, _, err = run_cli(
        capsys, "campaign", "--circuits", "s27",
        "--incremental-from", store, "--non-robust",
    )
    assert code == 2
    assert "no campaign for circuit 's27'" in err


def test_journal_cross_resume_rejected(tmp_path, capsys):
    """A robust journal cannot be resumed under --non-robust settings."""
    journal = str(tmp_path / "s27.jsonl")
    assert run_cli(capsys, "campaign", "--circuits", "s27", "--journal", journal)[0] == 0
    with pytest.raises(ValueError, match="digest"):
        main(["campaign", "--circuits", "s27", "--resume", journal, "--non-robust"])


def test_store_ingest_query_report(tmp_path, capsys):
    """Journal ingest, JSON queries and the human-readable report."""
    journal = str(tmp_path / "s27.jsonl")
    store = str(tmp_path / "s.sqlite")
    assert run_cli(capsys, "campaign", "--circuits", "s27", "--journal", journal)[0] == 0

    code, out, _ = run_cli(
        capsys, "store", "ingest", "--store", store,
        "--journal", journal, "--circuits", "s27",
    )
    assert code == 0
    assert "ingested 1 campaign(s)" in out

    code, out, _ = run_cli(capsys, "store", "query", "campaigns", "--store", store)
    assert code == 0
    rows = json.loads(out)
    assert len(rows) == 1
    assert rows[0]["circuit"] == "s27"
    assert rows[0]["source"] == "journal"
    assert rows[0]["partial"] == 0

    code, out, _ = run_cli(capsys, "store", "query", "coverage", "--store", store)
    assert code == 0
    (trend,) = json.loads(out)
    assert 0.0 < trend["coverage"] <= 1.0

    code, out, _ = run_cli(capsys, "store", "query", "ablation", "--store", store)
    assert code == 0
    assert json.loads(out)[0]["campaigns"] == 1

    code, out, _ = run_cli(capsys, "store", "report", "--store", store)
    assert code == 0
    assert "Campaign store" in out and "s27" in out


def test_store_ingest_rejects_wrong_settings(tmp_path, capsys):
    """Journal ingest re-derives the digest and refuses a settings mismatch."""
    journal = str(tmp_path / "s27.jsonl")
    store = str(tmp_path / "s.sqlite")
    assert run_cli(capsys, "campaign", "--circuits", "s27", "--journal", journal)[0] == 0
    code, _, err = run_cli(
        capsys, "store", "ingest", "--store", store,
        "--journal", journal, "--circuits", "s27", "--non-robust",
    )
    assert code == 2
    assert "digest mismatch" in err


def test_journal_then_incremental_via_store_ingest(tmp_path, capsys):
    """The full journal -> store -> incremental chain works end to end."""
    journal = str(tmp_path / "s27.jsonl")
    store = str(tmp_path / "s.sqlite")
    assert run_cli(capsys, "campaign", "--circuits", "s27", "--journal", journal)[0] == 0
    assert run_cli(
        capsys, "store", "ingest", "--store", store,
        "--journal", journal, "--circuits", "s27",
    )[0] == 0
    code, out, _ = run_cli(
        capsys, "campaign", "--circuits", _edited_bench(tmp_path),
        "--incremental-from", store,
    )
    assert code == 0
    assert "Incremental re-run — s27" in out

"""The ATPG daemon: endpoints, job runner, warm caches, graceful shutdown.

:class:`AtpgService` is the long-lived process the ROADMAP's first open item
asks for: compiled netlists stay warm in a digest-keyed cache across
requests, finished campaigns are served from a result cache, submissions
queue by priority in front of the existing
:mod:`repro.orchestrate` coordinator/worker pool, and a SIGTERM checkpoints
every in-flight campaign through the JSONL journal so the next start
``--resume``\\ s it.

Endpoints (all JSON; see ``docs/SERVICE.md`` for the full reference)::

    GET  /                   endpoint index
    GET  /status             daemon + queue state
    GET  /metrics            Prometheus text exposition; ?format=json for JSON
    POST /jobs               submit a campaign            -> 202 {"job": ...}
    GET  /jobs[?status=s]    list jobs
    GET  /jobs/{id}          one job's status
    GET  /jobs/{id}/result   finished CampaignResult JSON (409 until done)
    GET  /jobs/{id}/events   per-fault progress records; ?stream=1 for NDJSON
    POST /jobs/{id}/cancel   cancel a queued or running job
    GET  /cache              netlist/result cache + compile counters
    POST /queue/pause        hold the runner (queued jobs wait)
    POST /queue/resume       release the runner

Embedding (tests do exactly this)::

    service = AtpgService(state_dir="/tmp/atpg", port=0)
    await service.start()          # binds an ephemeral port
    ...                            # service.port is now real
    await service.stop()
"""

from __future__ import annotations

import asyncio
import functools
import heapq
import logging
import os
import threading
import time
import traceback
from typing import AsyncIterator, Dict, List, Optional, Tuple

from repro.circuit.bench import BenchParseError
from repro.core.flow import SequentialDelayATPG
from repro.faults.model import enumerate_delay_faults
from repro.fausim.compile import compile_count
from repro.obs.export import metrics_document, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.orchestrate import CampaignInterrupted, CampaignOrchestrator
from repro.service.api import (
    ApiError,
    Request,
    Router,
    StreamResponse,
    TextResponse,
    handle_connection,
)
from repro.service.cache import NetlistCache, ResultCache, campaign_cache_key
from repro.service.jobs import JOB_STATES, TERMINAL_STATES, Job, JobSpec, JobStore
from repro.service.shutdown import ShutdownController

logger = logging.getLogger(__name__)


class AtpgService:
    """One daemon instance: HTTP server + priority queue + caches.

    Args:
        state_dir: directory for the persisted job table, per-job journals
            and finished results; created if missing.  A restarted daemon
            pointed at the same directory resumes interrupted jobs.
        host / port: listen address; ``port=0`` binds an ephemeral port
            (read :attr:`port` after :meth:`start`).
        max_netlists / max_results: LRU bounds of the two caches.
        paused: start with the job runner held (``POST /queue/resume``
            releases it) — used by tests that need deterministic queue order.
    """

    def __init__(
        self,
        state_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        max_netlists: int = 64,
        max_results: int = 256,
        paused: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        #: The service-scope registry: HTTP counters/latency, job-state
        #: transitions, scrape-time queue gauges, plus every finished job's
        #: absorbed campaign snapshot.
        self.metrics = MetricsRegistry()
        self.store = JobStore(state_dir)
        self.netlists = NetlistCache(max_netlists)
        self.results = ResultCache(max_results)
        self.shutdown = ShutdownController()
        self.paused = paused
        self.started_at = time.time()
        self.current_job: Optional[Job] = None
        self._queue: List[Tuple[Tuple[int, int], Job]] = []
        self._queue_cond: Optional[asyncio.Condition] = None
        self._event_signal: Optional[asyncio.Event] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._runner: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the server, reload persisted jobs and start the runner."""
        self._loop = asyncio.get_running_loop()
        self._queue_cond = asyncio.Condition()
        self._event_signal = asyncio.Event()
        self.shutdown.bind(self._loop)
        for job in self.store.load():
            heapq.heappush(self._queue, (job.sort_key(), job))
        self._server = await asyncio.start_server(
            functools.partial(handle_connection, self._build_router()),
            host=self.host,
            port=self.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._runner = asyncio.create_task(self._run_jobs(), name="repro-job-runner")
        logger.info(
            "service listening on %s:%d (state dir %s, %d job(s) reloaded)",
            self.host, self.port, self.store.state_dir, len(self.store.jobs),
        )

    async def run_until_shutdown(self) -> None:
        """Serve until the shutdown controller fires, then stop gracefully."""
        await self.shutdown.triggered.wait()
        await self.stop()

    async def stop(self) -> None:
        """Graceful stop: close the listener, drain, checkpoint, persist."""
        self.shutdown.stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._queue_cond is not None:
            async with self._queue_cond:
                self._queue_cond.notify_all()
        if self._runner is not None:
            await self._runner
        self.store.save()
        if self._event_signal is not None:
            self._notify_events()
        logger.info("service stopped (%s)", self.shutdown.reason or "stop()")

    # ------------------------------------------------------------------ #
    # job runner
    # ------------------------------------------------------------------ #
    async def _run_jobs(self) -> None:
        """Pull jobs off the priority queue, one at a time, until shutdown."""
        while True:
            async with self._queue_cond:
                while not self.shutdown.stopping and (self.paused or not self._queue):
                    await self._queue_cond.wait()
                if self.shutdown.stopping:
                    return
                _, job = heapq.heappop(self._queue)
            if job.status != "queued":
                continue  # cancelled while waiting
            await self._execute(job)
            if self.shutdown.stopping:
                return

    async def _execute(self, job: Job) -> None:
        """Run one job: cache lookup, then orchestrated (or serial) campaign."""
        job.status = "running"
        job.started_at = time.time()
        self.current_job = job
        self.store.save()
        self._notify_events()
        spec = job.spec
        logger.info(
            "job %s started (circuit=%s jobs=%d backend=%s)",
            job.id, spec.circuit or spec.name or "submitted", spec.jobs, spec.backend,
        )
        job_registry = MetricsRegistry()
        try:
            circuit, net_digest = await self._in_executor(self._prepare_circuit, spec)
            universe = enumerate_delay_faults(circuit)
            config = spec.orchestrator_config()
            cache_key = campaign_cache_key(
                net_digest,
                circuit.name,
                config.digest_payload(),
                universe,
                spec.max_target_faults,
            )

            cached = None if spec.time_limit_s is not None else self.results.get(cache_key)
            if cached is not None:
                job.cache_hit = True
                job.result_json = cached
                job.total_faults = cached.get("total_faults")
                job.add_event({"type": "cache-hit", "key": cache_key})
            elif spec.incremental_from is not None:
                # Store-backed incremental re-run: bit-identical to a
                # from-scratch campaign on the submitted netlist, so the
                # result is cacheable under the ordinary campaign key.
                # Always serial — 'jobs' is orchestration-only and absent
                # from the config digest, so it is ignored here.
                outcome = await self._in_executor(
                    self._run_incremental, spec, circuit, config, job_registry
                )
                result = outcome.result
                job.result_json = result.to_json()
                job.total_faults = result.total_faults
                job.add_event({"type": "incremental", **outcome.summary()})
                job.metrics_json = metrics_document(
                    job_registry.snapshot(),
                    fault_costs=outcome.costs,
                    context={"job_id": job.id},
                )
                self.results.put(cache_key, job.result_json)
            elif spec.time_limit_s is not None:
                # Time-limited jobs run the serial flow (the partial result
                # depends on wall time, so it is neither journaled for
                # resume nor inserted into the result cache).
                result = await self._in_executor(
                    self._run_serial, spec, circuit, job_registry
                )
                job.result_json = result.to_json()
                job.total_faults = result.total_faults
                job.metrics_json = metrics_document(
                    job_registry.snapshot(), context={"job_id": job.id}
                )
            else:
                journal_path = self.store.journal_path(job)
                orchestrator = CampaignOrchestrator(
                    circuit,
                    config=config,
                    journal_path=journal_path,
                    resume=os.path.exists(journal_path),
                    on_record=functools.partial(self._on_record, job),
                    should_stop=lambda: self.shutdown.stopping or job.cancel_requested,
                    metrics=job_registry,
                )
                result = await self._in_executor(
                    orchestrator.run, None, spec.max_target_faults
                )
                job.result_json = result.to_json()
                job.total_faults = result.total_faults
                job.metrics_json = metrics_document(
                    job_registry.snapshot(),
                    fault_costs=orchestrator.fault_costs,
                    context={"job_id": job.id},
                )
                self.results.put(cache_key, job.result_json)
            job.status = "done"
            self.store.save_result(job)
        except CampaignInterrupted:
            job.status = "cancelled" if job.cancel_requested else "interrupted"
            job.error = f"campaign interrupted ({self.shutdown.reason or 'cancel'})"
        except Exception:  # noqa: BLE001 - job failure must not kill the daemon
            job.status = "failed"
            job.error = traceback.format_exc()
        finally:
            job.finished_at = time.time()
            self.current_job = None
            self.metrics.inc("repro_jobs_total", state=job.status)
            self.metrics.absorb(job_registry.snapshot())
            logger.info(
                "job %s finished: %s (%.3fs)",
                job.id, job.status, job.finished_at - job.started_at,
            )
            self.store.save()
            self._notify_events()

    def _prepare_circuit(self, spec: JobSpec):
        """Resolve and warm the submitted circuit (runs in the executor)."""
        circuit, net_digest, _ = self.netlists.warm(spec.build_circuit())
        return circuit, net_digest

    @staticmethod
    def _run_incremental(spec: JobSpec, circuit, config, metrics=None) -> object:
        """The store-backed incremental campaign path (runs in the executor)."""
        from repro.store import CampaignStore, run_incremental

        with CampaignStore(spec.incremental_from) as store:
            return run_incremental(
                circuit,
                store,
                config,
                max_target_faults=spec.max_target_faults,
                metrics=metrics,
            )

    @staticmethod
    def _run_serial(spec: JobSpec, circuit, metrics=None) -> object:
        """The serial time-limited campaign path (runs in the executor)."""
        atpg = SequentialDelayATPG(
            circuit,
            robust=spec.robust,
            local_backtrack_limit=spec.backtrack_limit,
            sequential_backtrack_limit=spec.backtrack_limit,
            metrics=metrics,
            backend=spec.backend,
        )
        prefix = None
        if spec.rpg_prefix:
            from repro.core.prefilter import PrefixConfig

            prefix = PrefixConfig(
                budget=spec.rpg_budget, window=spec.rpg_window, seed=spec.seed
            )
        return atpg.run(
            max_target_faults=spec.max_target_faults,
            time_limit_s=spec.time_limit_s,
            prefix=prefix,
        )

    async def _in_executor(self, fn, *args):
        return await self._loop.run_in_executor(None, functools.partial(fn, *args))

    def _on_record(self, job: Job, record: Dict[str, object]) -> None:
        """Coordinator progress hook (called from the campaign thread)."""
        job.add_event(record)
        self._loop.call_soon_threadsafe(self._notify_events)

    def _notify_events(self) -> None:
        """Wake every progress-stream waiter (event loop thread only)."""
        signal, self._event_signal = self._event_signal, asyncio.Event()
        signal.set()

    # ------------------------------------------------------------------ #
    # routes
    # ------------------------------------------------------------------ #
    def _build_router(self) -> Router:
        router = Router()
        routes = (
            ("GET", "/", self._handle_index),
            ("GET", "/status", self._handle_status),
            ("GET", "/metrics", self._handle_metrics),
            ("POST", "/jobs", self._handle_submit),
            ("GET", "/jobs", self._handle_list),
            ("GET", "/jobs/{job_id}", self._handle_job),
            ("GET", "/jobs/{job_id}/result", self._handle_result),
            ("GET", "/jobs/{job_id}/events", self._handle_events),
            ("POST", "/jobs/{job_id}/cancel", self._handle_cancel),
            ("GET", "/cache", self._handle_cache),
            ("POST", "/queue/pause", self._handle_pause),
            ("POST", "/queue/resume", self._handle_resume),
        )
        for method, pattern, handler in routes:
            router.add(method, pattern, self._instrumented(method, pattern, handler))
        return router

    def _instrumented(self, method: str, route: str, handler):
        """Wrap one handler with request counting, latency and an INFO log.

        The route label is the registered *pattern* (``/jobs/{job_id}``, not
        the concrete path), keeping the label cardinality fixed.
        :class:`ApiError` is re-raised after counting so the API layer still
        renders it as the JSON error response.
        """

        @functools.wraps(handler)
        async def wrapped(request: Request, **captures: str):
            start = time.perf_counter()
            status = 500
            try:
                response = await handler(request, **captures)
                if isinstance(response, (StreamResponse, TextResponse)):
                    status = getattr(response, "status", 200)
                else:
                    status = response[0]
                return response
            except ApiError as exc:
                status = exc.status
                raise
            finally:
                elapsed = time.perf_counter() - start
                self.metrics.inc(
                    "repro_http_requests_total",
                    method=method, route=route, status=str(status),
                )
                self.metrics.observe(
                    "repro_http_request_seconds", elapsed, route=route
                )
                logger.info(
                    "%s %s -> %d (%.1f ms)", method, request.path, status,
                    elapsed * 1000,
                )

        return wrapped

    async def _handle_metrics(self, request: Request):
        """``GET /metrics``: Prometheus text, or JSON with ``?format=json``."""
        self.metrics.set_gauge(
            "repro_uptime_seconds", round(time.time() - self.started_at, 3)
        )
        by_state = {state: 0 for state in JOB_STATES}
        for job in self.store.jobs.values():
            by_state[job.status] = by_state.get(job.status, 0) + 1
        for state, count in by_state.items():
            self.metrics.set_gauge("repro_jobs_state", count, state=state)
        self.metrics.set_gauge(
            "repro_queue_depth",
            sum(1 for _, job in self._queue if job.status == "queued"),
        )
        self.metrics.set_gauge("repro_queue_paused", int(self.paused))
        snapshot = self.metrics.snapshot()
        if request.query.get("format") == "json":
            return 200, metrics_document(snapshot, context={"service": "repro-atpg"})
        return TextResponse(render_prometheus(snapshot))

    async def _handle_index(self, request: Request):
        return 200, {
            "service": "repro-atpg",
            "endpoints": [
                "GET /status", "GET /metrics", "POST /jobs", "GET /jobs",
                "GET /jobs/{id}", "GET /jobs/{id}/result",
                "GET /jobs/{id}/events", "POST /jobs/{id}/cancel",
                "GET /cache", "POST /queue/pause", "POST /queue/resume",
            ],
        }

    async def _handle_status(self, request: Request):
        # Zero-filled over every lifecycle state, so dashboards can rely on
        # the keys being present before the first job ever reaches a state.
        by_state: Dict[str, int] = {state: 0 for state in JOB_STATES}
        for job in self.store.jobs.values():
            by_state[job.status] = by_state.get(job.status, 0) + 1
        queued = sorted(
            (job for _, job in self._queue if job.status == "queued"),
            key=lambda job: job.sort_key(),
        )
        return 200, {
            "status": "draining" if self.shutdown.stopping else "running",
            "paused": self.paused,
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": by_state,
            "running": self.current_job.id if self.current_job else None,
            "queue": [job.id for job in queued],
            "queue_depth": len(queued),
        }

    async def _handle_submit(self, request: Request):
        if self.shutdown.stopping:
            raise ApiError(503, "daemon is shutting down; resubmit after restart")
        try:
            spec = JobSpec.from_request(request.json())
            if spec.bench is not None:
                spec.build_circuit()  # surface syntax errors as a 400 now
        except (ValueError, BenchParseError) as exc:
            raise ApiError(400, str(exc)) from None
        job = self.store.create(spec)
        async with self._queue_cond:
            heapq.heappush(self._queue, (job.sort_key(), job))
            self._queue_cond.notify_all()
        return 202, {"job": job.to_public_json()}

    async def _handle_list(self, request: Request):
        wanted = request.query.get("status")
        jobs = sorted(self.store.jobs.values(), key=lambda job: job.seq)
        if wanted is not None:
            jobs = [job for job in jobs if job.status == wanted]
        return 200, {"jobs": [job.to_public_json() for job in jobs]}

    def _require_job(self, job_id: str) -> Job:
        job = self.store.get(job_id)
        if job is None:
            raise ApiError(404, f"no such job: {job_id}")
        return job

    async def _handle_job(self, request: Request, job_id: str):
        return 200, {"job": self._require_job(job_id).to_public_json()}

    async def _handle_result(self, request: Request, job_id: str):
        job = self._require_job(job_id)
        if job.status == "failed":
            raise ApiError(409, f"job {job_id} failed: {job.error}")
        if job.status != "done":
            raise ApiError(409, f"job {job_id} is {job.status}; no result yet")
        result = self.store.load_result(job)
        if result is None:
            raise ApiError(500, f"result of {job_id} is missing from the state dir")
        payload = {"job_id": job_id, "cache_hit": job.cache_hit, "campaign": result}
        if job.metrics_json is not None:
            payload["metrics"] = job.metrics_json
        return 200, payload

    async def _handle_events(self, request: Request, job_id: str):
        job = self._require_job(job_id)
        offset = request.query_int("offset", 0)
        if offset < 0:
            raise ApiError(400, "query parameter 'offset' must be >= 0")
        if request.query.get("stream") in ("1", "true"):
            return StreamResponse(self._stream_events(job, offset))
        records = job.events_since(offset)
        return 200, {
            "job_id": job_id,
            "events": records,
            "next_offset": offset + len(records),
            "done": job.status not in ("queued", "running"),
        }

    async def _stream_events(
        self, job: Job, offset: int
    ) -> AsyncIterator[Dict[str, object]]:
        """Yield progress records as they arrive until the job settles."""
        while True:
            signal = self._event_signal  # grab before snapshotting: no lost wakeups
            records = job.events_since(offset)
            offset += len(records)
            for record in records:
                yield record
            if job.status not in ("queued", "running"):
                for record in job.events_since(offset):
                    yield record
                return
            await signal.wait()

    async def _handle_cancel(self, request: Request, job_id: str):
        job = self._require_job(job_id)
        if job.status == "queued":
            job.status = "cancelled"
            job.finished_at = time.time()
            self.store.save()
            self._notify_events()
        elif job.status == "running":
            job.cancel_requested = True  # the should_stop hook picks this up
        elif job.status in TERMINAL_STATES or job.status == "interrupted":
            raise ApiError(409, f"job {job_id} is already {job.status}")
        return 200, {"job": job.to_public_json()}

    async def _handle_cache(self, request: Request):
        return 200, {
            "netlists": self.netlists.stats(),
            "results": self.results.stats(),
            "compile_count": compile_count(),
        }

    async def _handle_pause(self, request: Request):
        self.paused = True
        return 200, {"paused": True}

    async def _handle_resume(self, request: Request):
        self.paused = False
        async with self._queue_cond:
            self._queue_cond.notify_all()
        return 200, {"paused": False}


class ServiceThread:
    """Run an :class:`AtpgService` on a private event loop in a thread.

    The embedding shape used by the e2e tests (and handy for notebooks):
    construction arguments are forwarded to :class:`AtpgService`; the
    context manager starts the daemon, blocks until the port is bound, and
    requests a graceful shutdown on exit.  Signal handlers are *not*
    installed — graceful stop happens via :meth:`stop`.
    """

    def __init__(self, **kwargs: object) -> None:
        self._kwargs = kwargs
        self.service: Optional[AtpgService] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "ServiceThread":
        """Start the daemon thread and wait for the server to bind."""
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._amain()), name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60)
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        if self.port is None:
            raise RuntimeError("service did not bind within 60s")
        return self

    async def _amain(self) -> None:
        try:
            self.service = AtpgService(**self._kwargs)
            await self.service.start()
        except BaseException as exc:  # noqa: BLE001 - startup errors surface in start()
            self._error = exc
            self._ready.set()
            return
        self.port = self.service.port
        self._ready.set()
        await self.service.run_until_shutdown()

    def stop(self, timeout: float = 60) -> None:
        """Request a graceful shutdown and join the daemon thread."""
        if self.service is not None and self._thread is not None and self._thread.is_alive():
            self.service.shutdown.request("stop()")
        if self._thread is not None:
            self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

"""Three-valued good-machine simulation (FAUSIM phase 1)."""

import itertools

import pytest

from repro.fausim.logic_sim import (
    LogicSimulator,
    simulate_combinational,
    simulate_sequence,
)


def test_combinational_full_values(and_chain):
    values = simulate_combinational(and_chain, {"a": 1, "b": 1, "c": 0})
    assert values["ab"] == 1
    assert values["bc"] == 0
    assert values["y"] == 1


def test_combinational_with_unknowns(and_chain):
    values = simulate_combinational(and_chain, {"a": 0, "c": 0})
    # b unknown: both AND terms are forced to 0 by the controlling value.
    assert values["ab"] == 0 and values["bc"] == 0 and values["y"] == 0
    values = simulate_combinational(and_chain, {"a": 1})
    assert values["ab"] is None
    assert values["y"] is None


def test_exhaustive_consistency_with_python_semantics(and_chain):
    for a, b, c in itertools.product((0, 1), repeat=3):
        values = simulate_combinational(and_chain, {"a": a, "b": b, "c": c})
        assert values["y"] == ((a and b) or (b and c))


def test_s27_single_frame(s27):
    simulator = LogicSimulator(s27)
    frame = simulator.clock({"G0": 1, "G1": 0, "G2": 1, "G3": 0}, {"G5": 0, "G6": 0, "G7": 0})
    # G14 = NOT(G0) = 0, G8 = AND(G14, G6) = 0
    assert frame.values["G14"] == 0
    assert frame.values["G8"] == 0
    # next state comes from G10, G11, G13
    assert set(frame.next_state) == {"G5", "G6", "G7"}
    assert frame.next_state["G5"] == frame.values["G10"]


def test_sequence_simulation_toggle(toggle_ff):
    # q starts unknown; enable=0 keeps it unknown, first known value needs reset-like behaviour
    result = simulate_sequence(toggle_ff, [{"enable": 0}, {"enable": 1}], {"q": 0})
    assert result.frame_count == 2
    # frame 0: q=0, enable=0 -> next_q = 0; frame 1: enable=1 -> next_q = 1
    assert result.frames[0].next_state["q"] == 0
    assert result.final_state["q"] == 1


def test_sequence_starts_all_unknown_by_default(toggle_ff):
    result = simulate_sequence(toggle_ff, [{"enable": 1}])
    assert result.final_state["q"] is None


def test_primary_output_trace(resettable_ff):
    vectors = [
        {"data": 0, "reset": 1, "observe": 1},  # force q -> 0
        {"data": 1, "reset": 0, "observe": 1},  # load 1
        {"data": 0, "reset": 0, "observe": 1},  # hold
    ]
    result = simulate_sequence(resettable_ff, vectors)
    trace = result.primary_output_trace(resettable_ff)
    assert len(trace) == 3
    # After the reset frame the state is known.
    assert result.frames[0].next_state["q"] == 0
    assert result.frames[1].next_state["q"] == 1
    assert result.final_state["q"] == 1
    # The output in frame 2 observes the held value.
    assert trace[2]["out"] == 1


def test_outputs_projection(s27):
    simulator = LogicSimulator(s27)
    frame = simulator.clock({"G0": 0, "G1": 0, "G2": 0, "G3": 0}, {"G5": 0, "G6": 0, "G7": 0})
    outputs = simulator.outputs(frame.values)
    assert set(outputs) == {"G17"}


def test_missing_inputs_default_to_unknown(s27):
    simulator = LogicSimulator(s27)
    frame = simulator.clock({}, {})
    assert frame.values["G0"] is None
    # G17 = NOT(G11) where G11 depends on unknown state: unknown
    assert frame.values["G17"] is None
